//! The snapshot-isolated concurrent serving layer (ROADMAP item 1).
//!
//! The paper frames `assert[·]` as a database *transformation*: an
//! assertion produces a new conditioned database that subsequent queries
//! run against. This module maps that semantics directly onto concurrency:
//!
//! * a [`Snapshot`] is one immutable database version — the world table,
//!   the U-relations (whose rows embed the ws-descriptor state), and an
//!   [`Arc`]-held [`SharedDecompositionCache`] that the stamp-binding of
//!   PR 2 ties to exactly this version;
//! * a [`ProbDbService`] serves any number of reader threads against the
//!   current snapshot while a writer builds the next one: conditioning
//!   never mutates in place — [`ProbDbService::assert_all`] conditions the
//!   current snapshot into a **new** [`Snapshot`] and publishes it with an
//!   atomic `Arc` swap, so readers either see the whole old version or the
//!   whole new one, never a mix.
//!
//! # Publish protocol
//!
//! `current` is an `RwLock<Arc<Snapshot>>` used only as a swap cell: a
//! reader takes the read lock just long enough to clone the `Arc` (no
//! query work happens under it), and the single writer — serialized by the
//! `writer` mutex — replaces the `Arc` under the write lock. Readers that
//! pinned the old snapshot keep using it; it is freed when the last
//! reference drops.
//!
//! # Plan cache and batched admission
//!
//! Repeated queries skip the optimizer through a plan cache keyed on
//! *(plan fingerprint, snapshot stamp)*: a published snapshot invalidates
//! the cache simply by never matching the old keys. The plan rendering is
//! produced **once per request** and shared (`Arc<str>`) between the
//! lookup, the memo insert and the admission table, and the memo itself is
//! capacity-capped ([`ServiceOptions::plan_capacity`]): beyond the cap the
//! oldest-inserted entries are evicted (counted in
//! [`ServiceStats::plan_evictions`]), so a read-heavy service with many
//! distinct plans cannot grow without bound within one snapshot's
//! lifetime. Concurrent `conf` requests for the same *(plan, snapshot)*
//! are coalesced by batched admission: the first requester runs the
//! shared-cache fold on the configured worker pool and every concurrent
//! duplicate waits for — and shares — that one result, so identical
//! requests never compete for the pool (ROADMAP item 5: one pool, not
//! competing pools).
//!
//! # Delta publish and cache inheritance
//!
//! A publish no longer cold-starts the decomposition cache. Every publish
//! path derives a variable remap from the old published snapshot to the
//! new database and carries warm entries across through
//! [`SharedDecompositionCache::inherit_from`] — the descriptor-
//! disjointness check that drops any entry mentioning a touched, unmapped
//! or re-distributed variable lives *there*, never here:
//!
//! * [`publish_delta`](ProbDbService::publish_delta) appends tuples,
//!   retractions and fresh variables through a [`DeltaBuilder`]; when the
//!   next database [`extends`](uprob_wsd::WorldTable::extends) the
//!   published one, the remap is the identity and **every** entry
//!   survives;
//! * [`assert_all`](ProbDbService::assert_all) inherits through the
//!   conditioning remap ([`Conditioned::prior_remap`] minus
//!   [`Conditioned::touched_variables`]), so an unmutated relation's warm
//!   entries survive conditioning;
//! * [`assert_all_delta`](ProbDbService::assert_all_delta) keeps an
//!   unconditioned **prior line** evolving by deltas plus a
//!   [`ViolationMemo`] of per-constraint violation ws-sets, re-deriving
//!   only the sets whose input relations changed, and inherits posterior →
//!   posterior by composing the previous publish's conditioning remap with
//!   the current one.
//!
//! [`Conditioned::prior_remap`]: uprob_core::Conditioned::prior_remap
//! [`Conditioned::touched_variables`]: uprob_core::Conditioned::touched_variables
//!
//! # Bit-identity contract
//!
//! A served answer equals the single-owner library call bit for bit at
//! every worker and reader count: the served `query` path is exactly
//! `optimize_plan` + `execute_plan` (the plan cache memoizes the optimizer
//! output, which is a pure function of plan and catalog), the served
//! `conf` path is exactly [`answer_confidences_with_options`] over the
//! snapshot's cache (shared-cache hits are bit-identical to recomputation
//! by the PR 2 contract), and coalesced requests share a result that each
//! of them would have computed bit-identically anyway. The workspace
//! stress test pins this under the CI `UPROB_WORKERS` matrix.
//!
//! # Panic containment
//!
//! Every service entry point runs the request under
//! [`std::panic::catch_unwind`]: a panicking request fails with
//! [`QueryError::RequestPanicked`] instead of unwinding into the caller,
//! and the locks it may have poisoned (the scheduler's and the cache's are
//! poison-tolerant, as are the service's own) stay usable, so subsequent
//! requests succeed.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError, RwLock};

use uprob_core::{
    panic_message, CacheStats, ConditioningOptions, DecompositionOptions, DecompositionStats,
    InheritOutcome, ParallelOptions, SharedDecompositionCache,
};
use uprob_urel::{execute_plan, optimize_plan, DeltaBuilder, DeltaReport, Plan, ProbDb, URelation};
use uprob_wsd::{FxHashMap, VarId, WorldTable};

use crate::confidence::{answer_confidences_with_options, AnswerConfidences};
use crate::constraints::{assert_all_delta, assert_all_with_options, Constraint, ViolationMemo};
use crate::error::QueryError;
use crate::Result;

/// Source of fresh snapshot stamps (0 is reserved, mirroring world-table
/// stamps). Snapshot stamps are distinct from world-table stamps: two
/// snapshots can share an unmutated world table while differing in their
/// relations, and the plan cache must tell them apart.
static NEXT_SNAPSHOT_STAMP: AtomicU64 = AtomicU64::new(1);

fn fresh_snapshot_stamp() -> u64 {
    NEXT_SNAPSHOT_STAMP.fetch_add(1, Ordering::Relaxed)
}

/// One immutable published version of a probabilistic database: the world
/// table and relations (with their ws-descriptor state), plus the shared
/// decomposition cache bound to exactly this version.
///
/// Snapshots are cheap to share (`Arc`) and never mutated after
/// construction; conditioning produces a *new* snapshot (see
/// [`ProbDbService::assert_all`]).
pub struct Snapshot {
    db: ProbDb,
    cache: Arc<SharedDecompositionCache>,
    stamp: u64,
}

impl Snapshot {
    /// Wraps a database as an immutable snapshot with a fresh stamp and an
    /// empty decomposition cache. The cache binds itself to the snapshot's
    /// world table on first use (the PR 2 stamp check), so it can never
    /// serve probabilities computed for a different version.
    pub fn new(db: ProbDb) -> Self {
        Snapshot::with_cache(db, SharedDecompositionCache::new())
    }

    /// Wraps a database as an immutable snapshot around an explicit cache
    /// — the publish paths pass in a cache pre-warmed by
    /// [`SharedDecompositionCache::inherit_from`], which has already bound
    /// it to `db`'s world table.
    pub fn with_cache(db: ProbDb, cache: SharedDecompositionCache) -> Self {
        Snapshot {
            db,
            cache: Arc::new(cache),
            stamp: fresh_snapshot_stamp(),
        }
    }

    /// The database of this snapshot.
    pub fn db(&self) -> &ProbDb {
        &self.db
    }

    /// The snapshot stamp: unique per published version, used to key the
    /// plan cache and the admission table.
    pub fn stamp(&self) -> u64 {
        self.stamp
    }

    /// The decomposition cache bound to this snapshot.
    pub fn cache(&self) -> &Arc<SharedDecompositionCache> {
        &self.cache
    }

    /// Counters of this snapshot's decomposition cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }
}

/// The policy one [`ProbDbService`] applies to every request: the
/// decomposition and conditioning options, and the **explicit** worker
/// policy — the service never consults the environment per request (see
/// [`ParallelOptions::from_env`] for the read-once rationale; resolve the
/// environment once at startup and pass the result in here).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServiceOptions {
    /// Decomposition policy for every confidence computation.
    pub decomposition: DecompositionOptions,
    /// Conditioning policy for [`ProbDbService::assert_all`].
    pub conditioning: ConditioningOptions,
    /// Worker-count policy shared by every request (one pool policy, not
    /// per-request environment reads).
    pub parallel: ParallelOptions,
    /// Capacity of the optimized-plan memo in entries (all snapshots
    /// combined); the oldest-inserted entries are evicted beyond it
    /// (clamped to at least 1).
    pub plan_capacity: usize,
}

/// Default [`ServiceOptions::plan_capacity`]: generous for interactive
/// workloads, bounded for plan-diverse ones.
const DEFAULT_PLAN_CAPACITY: usize = 512;

impl Default for ServiceOptions {
    fn default() -> Self {
        ServiceOptions {
            decomposition: DecompositionOptions::default(),
            conditioning: ConditioningOptions::default(),
            parallel: ParallelOptions::default(),
            plan_capacity: DEFAULT_PLAN_CAPACITY,
        }
    }
}

/// The outcome of a served [`ProbDbService::assert_all`]: the snapshot
/// that was published plus the conditioning summary of
/// [`uprob_core::conditioning::Conditioned`].
pub struct AssertOutcome {
    /// The newly published snapshot (also reachable via
    /// [`ProbDbService::snapshot`] until the next publish).
    pub snapshot: Arc<Snapshot>,
    /// The confidence of the asserted constraint set in the *previous*
    /// snapshot; in the published snapshot it holds with probability 1.
    pub confidence: f64,
    /// Decomposition counters of the conditioning run.
    pub stats: DecompositionStats,
    /// Number of fresh variables introduced (before simplification).
    pub new_variables: usize,
    /// Cache-inheritance summary of the publish: how many warm entries of
    /// the previous snapshot survived into the new one, and how many were
    /// dropped by the descriptor-disjointness check.
    pub inherited: InheritOutcome,
    /// Violation ws-sets served from the delta memo instead of being
    /// recompiled (always 0 for the full-rebuild
    /// [`ProbDbService::assert_all`]).
    pub reused_violations: u64,
}

/// The outcome of a served [`ProbDbService::publish_delta`].
pub struct DeltaOutcome {
    /// The newly published snapshot.
    pub snapshot: Arc<Snapshot>,
    /// What the delta touched (relations, variables, row counts).
    pub report: DeltaReport,
    /// Cache-inheritance summary of the publish — for a pure append delta
    /// the remap is the identity and every warm entry survives.
    pub inherited: InheritOutcome,
}

/// Aggregate counters of one service (monotone; read with
/// [`ProbDbService::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests admitted (queries, confidence requests and assertions,
    /// including failed ones).
    pub requests: u64,
    /// Plan-cache hits (optimizer skipped).
    pub plan_hits: u64,
    /// Plan-cache misses (optimizer ran, result memoized).
    pub plan_misses: u64,
    /// Plan-cache entries evicted by the capacity cap
    /// ([`ServiceOptions::plan_capacity`]); retirements of a replaced
    /// snapshot's keys on publish are not counted.
    pub plan_evictions: u64,
    /// Confidence folds actually executed (admission leaders).
    pub confidence_folds: u64,
    /// Confidence requests served by waiting for a concurrent identical
    /// fold instead of running their own (admission followers).
    pub coalesced: u64,
    /// Requests that panicked and were contained as
    /// [`QueryError::RequestPanicked`].
    pub contained_panics: u64,
}

impl ServiceStats {
    /// Fraction of plan lookups answered from the plan cache (0 if none).
    pub fn plan_hit_rate(&self) -> f64 {
        let lookups = self.plan_hits + self.plan_misses;
        if lookups == 0 {
            0.0
        } else {
            self.plan_hits as f64 / lookups as f64
        }
    }
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
    plan_evictions: AtomicU64,
    confidence_folds: AtomicU64,
    coalesced: AtomicU64,
    contained_panics: AtomicU64,
}

/// One in-flight coalesced confidence fold: the leader fills `slot` and
/// notifies; followers wait on `ready`.
struct Inflight {
    slot: Mutex<Option<Result<AnswerConfidences>>>,
    ready: Condvar,
}

impl Inflight {
    fn new() -> Self {
        Inflight {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        }
    }
}

/// Key of the plan cache and the admission table: (snapshot stamp, plan
/// rendering). The full rendering — not a hash of it — is the key, so two
/// distinct plans can never collide into sharing an optimized form or a
/// coalesced result. It is rendered **once per request** and shared as an
/// `Arc<str>` between the lookup, the memo insert and the admission table
/// (satellite: no per-lookup `format!` on the hot path).
type RequestKey = (u64, Arc<str>);

/// Renders the one key a request uses for every cache interaction.
fn request_key(snapshot: &Snapshot, plan: &Plan) -> RequestKey {
    (snapshot.stamp(), Arc::from(format!("{plan:?}")))
}

/// The optimized-plan memo behind [`ProbDbService::query`] /
/// [`ProbDbService::conf`], capacity-capped: once `capacity` entries are
/// held, the oldest-inserted entry is evicted per insert. Eviction is a
/// space policy, never a correctness one — an evicted plan re-optimizes on
/// its next request, bit-identically (optimization is a pure function of
/// plan and catalog).
struct PlanCache {
    map: FxHashMap<RequestKey, Arc<Plan>>,
    /// Insertion order of the keys in `map` (kept in lockstep by
    /// `insert`/`retain_stamp`).
    order: VecDeque<RequestKey>,
    capacity: usize,
}

impl PlanCache {
    fn new(capacity: usize) -> Self {
        PlanCache {
            map: FxHashMap::default(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    fn get(&self, key: &RequestKey) -> Option<Arc<Plan>> {
        self.map.get(key).cloned()
    }

    /// Memoizes `plan` under `key`, evicting oldest entries down to the
    /// capacity; returns how many entries were evicted.
    fn insert(&mut self, key: RequestKey, plan: Arc<Plan>) -> u64 {
        if self.map.insert(key.clone(), plan).is_none() {
            self.order.push_back(key);
        }
        let mut evicted = 0;
        while self.map.len() > self.capacity {
            let Some(oldest) = self.order.pop_front() else {
                break;
            };
            if self.map.remove(&oldest).is_some() {
                evicted += 1;
            }
        }
        evicted
    }

    /// Retires every key of snapshots other than `live` (on publish).
    fn retain_stamp(&mut self, live: u64) {
        self.map.retain(|(stamp, _), _| *stamp == live);
        self.order.retain(|(stamp, _)| *stamp == live);
    }
}

/// The writer-side state of the delta path: the unconditioned **prior**
/// database evolving by [`DeltaBuilder`] mutations, the violation memo
/// keyed to it, and the conditioning remap of the last posterior publish
/// (prior variable → published posterior variable), used to compose the
/// posterior → posterior inheritance remap. Guarded by its own mutex,
/// always taken under `writer` (see the lint lock manifest).
#[derive(Default)]
struct PriorLine {
    /// `None` until the first delta request; initialized from the then-
    /// current snapshot.
    db: Option<ProbDb>,
    memo: ViolationMemo,
    /// `Some` iff the currently published snapshot is a posterior produced
    /// by [`ProbDbService::assert_all_delta`] from this prior line.
    posterior_remap: Option<FxHashMap<VarId, VarId>>,
}

/// A concurrent front-end over a probabilistic database: many reader
/// threads run [`query`](ProbDbService::query) /
/// [`conf`](ProbDbService::conf) against a consistent [`Snapshot`] while
/// [`assert_all`](ProbDbService::assert_all) builds and publishes the next
/// one. See the module docs for the publish protocol, the plan cache, the
/// batched admission and the bit-identity contract.
pub struct ProbDbService {
    /// The swap cell holding the current snapshot (see module docs).
    current: RwLock<Arc<Snapshot>>,
    /// Serializes writers (conditioning + publish).
    writer: Mutex<()>,
    /// The delta path's prior line (see [`PriorLine`]); taken only under
    /// `writer`.
    prior: Mutex<PriorLine>,
    options: ServiceOptions,
    /// Optimized-plan memo keyed by (snapshot stamp, plan rendering).
    plans: Mutex<PlanCache>,
    /// Admission table of in-flight confidence folds, same key space.
    inflight: Mutex<FxHashMap<RequestKey, Arc<Inflight>>>,
    counters: Counters,
}

impl ProbDbService {
    /// Serves `db` with [`ServiceOptions::default`] (sequential folds).
    pub fn new(db: ProbDb) -> Self {
        ProbDbService::with_options(db, ServiceOptions::default())
    }

    /// Serves `db` under an explicit request policy.
    pub fn with_options(db: ProbDb, options: ServiceOptions) -> Self {
        ProbDbService {
            current: RwLock::new(Arc::new(Snapshot::new(db))),
            writer: Mutex::new(()),
            prior: Mutex::new(PriorLine::default()),
            options,
            plans: Mutex::new(PlanCache::new(options.plan_capacity)),
            inflight: Mutex::new(FxHashMap::default()),
            counters: Counters::default(),
        }
    }

    /// The request policy of this service.
    pub fn options(&self) -> &ServiceOptions {
        &self.options
    }

    /// Pins the current snapshot: an `Arc` clone taken under a read lock
    /// held only for the clone itself. The returned snapshot stays fully
    /// usable (and internally consistent) across any number of concurrent
    /// publishes.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.current
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Aggregate service counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            requests: self.counters.requests.load(Ordering::Relaxed),
            plan_hits: self.counters.plan_hits.load(Ordering::Relaxed),
            plan_misses: self.counters.plan_misses.load(Ordering::Relaxed),
            plan_evictions: self.counters.plan_evictions.load(Ordering::Relaxed),
            confidence_folds: self.counters.confidence_folds.load(Ordering::Relaxed),
            coalesced: self.counters.coalesced.load(Ordering::Relaxed),
            contained_panics: self.counters.contained_panics.load(Ordering::Relaxed),
        }
    }

    /// Evaluates `plan` against the current snapshot through the plan
    /// cache: the optimizer runs at most once per (plan, snapshot) and the
    /// rows are bit-identical to the single-owner `ProbDb::query`.
    ///
    /// # Errors
    ///
    /// Propagates plan-validation errors; a panicking request fails with
    /// [`QueryError::RequestPanicked`].
    pub fn query(&self, plan: &Plan) -> Result<URelation> {
        self.guarded(|| {
            let snapshot = self.snapshot();
            self.query_on(&snapshot, plan)
        })
    }

    /// The `conf()` aggregate of `plan` against the current snapshot:
    /// plan-cached evaluation followed by the shared-cache batch
    /// confidence fold, with concurrent identical requests coalesced into
    /// one fold (see the module docs).
    ///
    /// # Errors
    ///
    /// Propagates plan-validation and decomposition errors; a panicking
    /// request fails with [`QueryError::RequestPanicked`].
    pub fn conf(&self, plan: &Plan) -> Result<AnswerConfidences> {
        self.guarded(|| {
            let snapshot = self.snapshot();
            self.conf_coalesced(&snapshot, plan)
        })
    }

    /// [`conf`](ProbDbService::conf) against an explicitly pinned
    /// snapshot (e.g. to keep a multi-query read transaction consistent
    /// across publishes). Requests for the *current* snapshot share its
    /// plan cache and admission table entries.
    ///
    /// # Errors
    ///
    /// As for [`conf`](ProbDbService::conf).
    pub fn conf_pinned(&self, snapshot: &Arc<Snapshot>, plan: &Plan) -> Result<AnswerConfidences> {
        self.guarded(|| self.conf_coalesced(snapshot, plan))
    }

    /// Runs an arbitrary read-only request against a pinned snapshot under
    /// the service's panic containment — the entry point for callers that
    /// compose several reads into one consistent unit.
    ///
    /// # Errors
    ///
    /// Whatever `request` returns; a panic inside `request` fails with
    /// [`QueryError::RequestPanicked`] instead of unwinding.
    pub fn with_snapshot<T>(&self, request: impl FnOnce(&Snapshot) -> Result<T>) -> Result<T> {
        self.guarded(|| {
            let snapshot = self.snapshot();
            request(&snapshot)
        })
    }

    /// `assert[·]` as a publish: conditions the current snapshot on
    /// `constraints` (single-pass, parallel violation compilation) and
    /// publishes the posterior database as a new [`Snapshot`] whose cache
    /// inherits every warm entry that survives the conditioning remap (see
    /// the module docs). Readers keep their pinned snapshots; writers are
    /// serialized. Resets the delta path's prior line — use
    /// [`assert_all_delta`](ProbDbService::assert_all_delta) for the
    /// incremental flavour.
    ///
    /// # Errors
    ///
    /// Propagates constraint-validation and conditioning errors (e.g.
    /// [`QueryError::UnsatisfiableConstraint`]); nothing is published on
    /// error. A panicking request fails with
    /// [`QueryError::RequestPanicked`].
    pub fn assert_all(&self, constraints: &[Constraint]) -> Result<AssertOutcome> {
        self.guarded(|| {
            let _writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
            let snapshot = self.snapshot();
            let conditioned = assert_all_with_options(
                snapshot.db(),
                constraints,
                &self.options.conditioning,
                &self.options.parallel,
            )?;
            let (cache, inherited) = Self::inherited_cache(
                &snapshot,
                conditioned.db.world_table(),
                &conditioned.prior_remap,
                &conditioned.touched_variables,
            );
            // A full conditioning starts a fresh delta line: the published
            // posterior has no tracked relationship to any earlier prior.
            *self.prior.lock().unwrap_or_else(PoisonError::into_inner) = PriorLine::default();
            let confidence = conditioned.confidence;
            let stats = conditioned.stats;
            let new_variables = conditioned.new_variables;
            Ok(AssertOutcome {
                snapshot: self.publish_with_cache(conditioned.db, cache),
                confidence,
                stats,
                new_variables,
                inherited,
                reused_violations: 0,
            })
        })
    }

    /// The incremental `assert[·]`: conditions the delta path's
    /// unconditioned **prior line** (initialized from the current snapshot
    /// on first use, advanced by
    /// [`publish_delta`](ProbDbService::publish_delta)) on `constraints`,
    /// reusing memoized violation ws-sets for every constraint whose input
    /// relations did not change since the last call, and publishes the
    /// posterior. The posterior is bit-identical to a full
    /// [`assert_all`](ProbDbService::assert_all) on the same prior; the
    /// published cache inherits posterior → posterior through the composed
    /// conditioning remaps.
    ///
    /// # Errors
    ///
    /// As for [`assert_all`](ProbDbService::assert_all); nothing is
    /// published (and neither the prior line nor the memo is corrupted) on
    /// error.
    pub fn assert_all_delta(&self, constraints: &[Constraint]) -> Result<AssertOutcome> {
        self.guarded(|| {
            let _writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
            let published = self.snapshot();
            let mut prior = self.prior.lock().unwrap_or_else(PoisonError::into_inner);
            let PriorLine {
                db,
                memo,
                posterior_remap,
            } = &mut *prior;
            let prior_db = db.get_or_insert_with(|| published.db().clone());
            let reused_before = memo.reused();
            let conditioned = assert_all_delta(
                prior_db,
                constraints,
                &self.options.conditioning,
                &self.options.parallel,
                memo,
            )?;
            let reused_violations = memo.reused() - reused_before;
            // Pick the remap from the published snapshot's variables to
            // the new posterior's: direct if the prior line extends the
            // published snapshot (it *is* the snapshot, or the snapshot
            // plus ingested append-only deltas — published variables keep
            // their ids and distributions, so the conditioning remap
            // applies to them verbatim), composed through the previous
            // publish's conditioning remap if the published snapshot is
            // the previous posterior.
            let inheritance = if prior_db.world_table().extends(published.db().world_table()) {
                Some((
                    conditioned.prior_remap.clone(),
                    conditioned.touched_variables.clone(),
                ))
            } else {
                posterior_remap.as_ref().map(|saved| {
                    let composed: FxHashMap<VarId, VarId> = saved
                        .iter()
                        .filter_map(|(prior_var, old_post)| {
                            conditioned
                                .prior_remap
                                .get(prior_var)
                                .map(|new_post| (*old_post, *new_post))
                        })
                        .collect();
                    // Touched is empty: any variable outside the composed
                    // remap (including the previous publish's fresh
                    // conditioning variables) is dropped as unmapped.
                    (composed, Vec::new())
                })
            };
            let (cache, inherited) = match inheritance {
                Some((remap, touched)) => Self::inherited_cache(
                    &published,
                    conditioned.db.world_table(),
                    &remap,
                    &touched,
                ),
                None => (SharedDecompositionCache::new(), InheritOutcome::default()),
            };
            *posterior_remap = Some(conditioned.prior_remap.clone());
            drop(prior);
            let confidence = conditioned.confidence;
            let stats = conditioned.stats;
            let new_variables = conditioned.new_variables;
            Ok(AssertOutcome {
                snapshot: self.publish_with_cache(conditioned.db, cache),
                confidence,
                stats,
                new_variables,
                inherited,
                reused_violations,
            })
        })
    }

    /// Applies a batch of mutations to the delta path's prior line
    /// **without** publishing: readers keep the current (typically
    /// conditioned) snapshot until the next
    /// [`assert_all_delta`](ProbDbService::assert_all_delta) publishes a
    /// fresh posterior over the accumulated deltas — the bounded-staleness
    /// ingest flow of the `--exp ingest` benchmark.
    ///
    /// # Errors
    ///
    /// Propagates builder errors; the prior line is unchanged on error. A
    /// panicking `build` fails with [`QueryError::RequestPanicked`].
    pub fn ingest(
        &self,
        build: impl FnOnce(&mut DeltaBuilder) -> uprob_urel::Result<()>,
    ) -> Result<DeltaReport> {
        self.guarded(|| {
            let _writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
            let published = self.snapshot();
            let mut prior = self.prior.lock().unwrap_or_else(PoisonError::into_inner);
            let base = prior.db.get_or_insert_with(|| published.db().clone());
            let mut builder = DeltaBuilder::new(base);
            build(&mut builder)?;
            let (next_db, report) = builder.finish();
            *base = next_db;
            Ok(report)
        })
    }

    /// Applies a batch of mutations to the delta path's prior line through
    /// a [`DeltaBuilder`] and publishes the result — **without**
    /// conditioning (pair with
    /// [`assert_all_delta`](ProbDbService::assert_all_delta) to publish
    /// posteriors instead). When the next database extends the published
    /// one (pure appends on the same line), the cache is inherited under
    /// the identity remap and every warm entry survives.
    ///
    /// # Errors
    ///
    /// Propagates builder errors (unknown relations, invalid descriptors,
    /// …); nothing is published and the prior line is unchanged on error.
    pub fn publish_delta(
        &self,
        build: impl FnOnce(&mut DeltaBuilder) -> uprob_urel::Result<()>,
    ) -> Result<DeltaOutcome> {
        self.guarded(|| {
            let _writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
            let published = self.snapshot();
            let mut prior = self.prior.lock().unwrap_or_else(PoisonError::into_inner);
            let PriorLine {
                db,
                posterior_remap,
                ..
            } = &mut *prior;
            let base = db.get_or_insert_with(|| published.db().clone());
            let mut builder = DeltaBuilder::new(base);
            build(&mut builder)?;
            let (next_db, report) = builder.finish();
            *base = next_db.clone();
            let (cache, inherited) = if next_db.world_table().extends(published.db().world_table())
            {
                let identity: FxHashMap<VarId, VarId> = published
                    .db()
                    .world_table()
                    .iter()
                    .map(|(var, _)| (var, var))
                    .collect();
                Self::inherited_cache(&published, next_db.world_table(), &identity, &[])
            } else {
                // The published snapshot is a posterior (or unrelated):
                // its variables have no identity mapping into the prior
                // line, so the new snapshot starts cold.
                (SharedDecompositionCache::new(), InheritOutcome::default())
            };
            // The published snapshot is now the prior line itself.
            *posterior_remap = None;
            drop(prior);
            Ok(DeltaOutcome {
                snapshot: self.publish_with_cache(next_db, cache),
                report,
                inherited,
            })
        })
    }

    /// Publishes `db` as the new current snapshot without conditioning
    /// (e.g. after loading fresh data). If `db`'s world table extends the
    /// published snapshot's (append-only growth), the decomposition cache
    /// is inherited wholesale; otherwise the new snapshot starts cold.
    /// Serialized with [`assert_all`](ProbDbService::assert_all); resets
    /// the delta path's prior line.
    pub fn publish(&self, db: ProbDb) -> Arc<Snapshot> {
        let _writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        let published = self.snapshot();
        let (cache, _inherited) = if db.world_table().extends(published.db().world_table()) {
            let identity: FxHashMap<VarId, VarId> = published
                .db()
                .world_table()
                .iter()
                .map(|(var, _)| (var, var))
                .collect();
            Self::inherited_cache(&published, db.world_table(), &identity, &[])
        } else {
            (SharedDecompositionCache::new(), InheritOutcome::default())
        };
        *self.prior.lock().unwrap_or_else(PoisonError::into_inner) = PriorLine::default();
        self.publish_with_cache(db, cache)
    }

    /// Builds the successor cache for a publish: every entry of `old`'s
    /// cache that survives `remap` minus `touched` is carried forward by
    /// [`SharedDecompositionCache::inherit_from`] — the single place the
    /// descriptor-disjointness soundness check lives. Falls back to a cold
    /// cache if the predecessor cache is bound to an unexpected table.
    fn inherited_cache(
        old: &Snapshot,
        new_table: &WorldTable,
        remap: &FxHashMap<VarId, VarId>,
        touched: &[VarId],
    ) -> (SharedDecompositionCache, InheritOutcome) {
        let cache = SharedDecompositionCache::new();
        match cache.inherit_from(
            old.cache(),
            old.db().world_table(),
            new_table,
            remap,
            touched,
        ) {
            Ok(outcome) => (cache, outcome),
            Err(_) => (SharedDecompositionCache::new(), InheritOutcome::default()),
        }
    }

    /// The swap: wraps `db` around `cache`, replaces `current`, and prunes
    /// plan-cache entries of retired snapshots (pinned-snapshot requests
    /// re-insert on demand, so pruning is a space policy, never a
    /// correctness one).
    fn publish_with_cache(&self, db: ProbDb, cache: SharedDecompositionCache) -> Arc<Snapshot> {
        let next = Arc::new(Snapshot::with_cache(db, cache));
        *self.current.write().unwrap_or_else(PoisonError::into_inner) = next.clone();
        let live = next.stamp();
        self.plans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .retain_stamp(live);
        next
    }

    /// Runs one request under panic containment (see the module docs).
    fn guarded<T>(&self, request: impl FnOnce() -> Result<T>) -> Result<T> {
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        match catch_unwind(AssertUnwindSafe(request)) {
            Ok(result) => result,
            Err(payload) => {
                self.counters
                    .contained_panics
                    .fetch_add(1, Ordering::Relaxed);
                Err(QueryError::RequestPanicked {
                    message: panic_message(payload.as_ref()),
                })
            }
        }
    }

    /// The optimized form of `plan` for `snapshot`, memoized: a pure
    /// function of (plan rendering, snapshot), so a cache hit is
    /// bit-identical to re-optimizing.
    fn optimized_plan(
        &self,
        snapshot: &Snapshot,
        plan: &Plan,
        key: &RequestKey,
    ) -> Result<Arc<Plan>> {
        {
            let plans = self.plans.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(hit) = plans.get(key) {
                self.counters.plan_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(hit);
            }
        }
        self.counters.plan_misses.fetch_add(1, Ordering::Relaxed);
        let optimized = Arc::new(optimize_plan(plan, snapshot.db())?);
        let evicted = self
            .plans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(key.clone(), optimized.clone());
        if evicted > 0 {
            self.counters
                .plan_evictions
                .fetch_add(evicted, Ordering::Relaxed);
        }
        Ok(optimized)
    }

    fn query_on(&self, snapshot: &Snapshot, plan: &Plan) -> Result<URelation> {
        let key = request_key(snapshot, plan);
        let optimized = self.optimized_plan(snapshot, plan, &key)?;
        Ok(execute_plan(snapshot.db(), &optimized)?)
    }

    /// The coalesced confidence fold: first requester per (snapshot, plan)
    /// computes, concurrent duplicates share the result.
    fn conf_coalesced(&self, snapshot: &Arc<Snapshot>, plan: &Plan) -> Result<AnswerConfidences> {
        let key = request_key(snapshot, plan);
        let (entry, leader) = {
            let mut inflight = self.inflight.lock().unwrap_or_else(PoisonError::into_inner);
            match inflight.get(&key) {
                Some(entry) => (entry.clone(), false),
                None => {
                    let entry = Arc::new(Inflight::new());
                    inflight.insert(key.clone(), entry.clone());
                    (entry, true)
                }
            }
        };
        if leader {
            self.counters
                .confidence_folds
                .fetch_add(1, Ordering::Relaxed);
            // Contain panics *inside* the fold here too: the slot must be
            // filled and the admission entry removed no matter what, or
            // followers would wait forever.
            let result =
                match catch_unwind(AssertUnwindSafe(|| self.conf_fold(snapshot, plan, &key))) {
                    Ok(result) => result,
                    Err(payload) => Err(QueryError::RequestPanicked {
                        message: panic_message(payload.as_ref()),
                    }),
                };
            {
                let mut slot = entry.slot.lock().unwrap_or_else(PoisonError::into_inner);
                *slot = Some(result.clone());
                entry.ready.notify_all();
            }
            self.inflight
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .remove(&key);
            result
        } else {
            self.counters.coalesced.fetch_add(1, Ordering::Relaxed);
            let mut slot = entry.slot.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(result) = slot.as_ref() {
                    return result.clone();
                }
                slot = entry
                    .ready
                    .wait(slot)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    /// One actual fold: plan-cached evaluation + the shared-cache batch
    /// confidence path on the configured worker pool.
    fn conf_fold(
        &self,
        snapshot: &Snapshot,
        plan: &Plan,
        key: &RequestKey,
    ) -> Result<AnswerConfidences> {
        let optimized = self.optimized_plan(snapshot, plan, key)?;
        let answer = execute_plan(snapshot.db(), &optimized)?;
        answer_confidences_with_options(
            &answer,
            snapshot.db().world_table(),
            &self.options.decomposition,
            &self.options.parallel,
            snapshot.cache(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uprob_urel::{ColumnType, Comparison, Expr, Predicate, Schema, Tuple, Value};
    use uprob_wsd::WsDescriptor;

    /// The SSN database of Figure 2.
    fn ssn_db() -> ProbDb {
        let mut db = ProbDb::new();
        let j = db
            .world_table_mut()
            .add_variable("j", &[(1, 0.2), (7, 0.8)])
            .unwrap();
        let b = db
            .world_table_mut()
            .add_variable("b", &[(4, 0.3), (7, 0.7)])
            .unwrap();
        let schema = Schema::new("R", &[("SSN", ColumnType::Int), ("NAME", ColumnType::Str)]);
        let mut r = db.create_relation(schema).unwrap();
        {
            let w = db.world_table();
            r.push(
                Tuple::new(vec![Value::Int(1), Value::str("John")]),
                WsDescriptor::from_pairs(w, &[(j, 1)]).unwrap(),
            );
            r.push(
                Tuple::new(vec![Value::Int(7), Value::str("John")]),
                WsDescriptor::from_pairs(w, &[(j, 7)]).unwrap(),
            );
            r.push(
                Tuple::new(vec![Value::Int(4), Value::str("Bill")]),
                WsDescriptor::from_pairs(w, &[(b, 4)]).unwrap(),
            );
            r.push(
                Tuple::new(vec![Value::Int(7), Value::str("Bill")]),
                WsDescriptor::from_pairs(w, &[(b, 7)]).unwrap(),
            );
        }
        db.insert_relation(r).unwrap();
        db
    }

    fn bills_plan() -> Plan {
        Plan::scan("R")
            .select(Predicate::col_eq("NAME", "Bill"))
            .project(&["SSN"])
    }

    #[test]
    fn served_answers_are_bit_identical_to_the_library_call() {
        let db = ssn_db();
        let service = ProbDbService::with_options(
            db.clone(),
            ServiceOptions {
                parallel: ParallelOptions::new(4),
                ..ServiceOptions::default()
            },
        );
        let plan = bills_plan();
        let served = service.conf(&plan).unwrap();
        let reference = crate::planned::planned_answer_confidences_with_options(
            &db,
            &plan,
            &service.options().decomposition,
            &ParallelOptions::sequential(),
            &SharedDecompositionCache::new(),
        )
        .unwrap();
        assert_eq!(served.tuples.len(), reference.tuples.len());
        for ((t1, p1), (t2, p2)) in served.tuples.iter().zip(&reference.tuples) {
            assert_eq!(t1, t2);
            assert_eq!(p1.to_bits(), p2.to_bits());
        }
        assert_eq!(served.boolean.to_bits(), reference.boolean.to_bits());
        // The served rows match the single-owner query as well.
        assert_eq!(service.query(&plan).unwrap(), db.query(&plan).unwrap());
    }

    #[test]
    fn plan_cache_hits_on_repeats_and_invalidates_on_publish() {
        let service = ProbDbService::new(ssn_db());
        let plan = bills_plan();
        service.conf(&plan).unwrap();
        service.conf(&plan).unwrap();
        let stats = service.stats();
        assert_eq!(
            stats.plan_misses, 1,
            "one optimization per (plan, snapshot)"
        );
        assert!(stats.plan_hits >= 1);
        assert!(stats.plan_hit_rate() > 0.0);
        // Publishing a new snapshot retires the old keys: the same plan
        // re-optimizes exactly once more.
        let before = service.snapshot().stamp();
        service
            .assert_all(&[Constraint::functional_dependency("R", &["SSN"], &["NAME"])])
            .unwrap();
        assert_ne!(service.snapshot().stamp(), before);
        service.conf(&plan).unwrap();
        assert_eq!(service.stats().plan_misses, 2);
    }

    #[test]
    fn assert_all_publishes_a_conditioned_snapshot() {
        let db = ssn_db();
        let service = ProbDbService::new(db.clone());
        let pinned = service.snapshot();
        let fd = Constraint::functional_dependency("R", &["SSN"], &["NAME"]);
        let outcome = service.assert_all(std::slice::from_ref(&fd)).unwrap();
        assert!((outcome.confidence - 0.44).abs() < 1e-9);
        assert_eq!(outcome.snapshot.stamp(), service.snapshot().stamp());
        // The reader's pinned snapshot still answers from the prior: the
        // publish did not mutate it.
        let prior = service.conf_pinned(&pinned, &bills_plan()).unwrap();
        let reference = crate::planned::planned_answer_confidences_with_options(
            &db,
            &bills_plan(),
            &service.options().decomposition,
            &ParallelOptions::sequential(),
            &SharedDecompositionCache::new(),
        )
        .unwrap();
        assert_eq!(prior.boolean.to_bits(), reference.boolean.to_bits());
        // Served answers against the new snapshot match the single-owner
        // call on the conditioned database.
        let conditioned = crate::constraints::assert_all(
            &db,
            std::slice::from_ref(&fd),
            &ConditioningOptions::default(),
        )
        .unwrap();
        let served = service.conf(&bills_plan()).unwrap();
        let library = crate::planned::planned_answer_confidences_with_options(
            &conditioned.db,
            &bills_plan(),
            &service.options().decomposition,
            &ParallelOptions::sequential(),
            &SharedDecompositionCache::new(),
        )
        .unwrap();
        assert_eq!(served.boolean.to_bits(), library.boolean.to_bits());
        for ((t1, p1), (t2, p2)) in served.tuples.iter().zip(&library.tuples) {
            assert_eq!(t1, t2);
            assert_eq!(p1.to_bits(), p2.to_bits());
        }
    }

    #[test]
    fn unsatisfiable_assertion_publishes_nothing() {
        let service = ProbDbService::new(ssn_db());
        let before = service.snapshot().stamp();
        let impossible = Constraint::row_filter("R", Predicate::col_eq("NAME", "Nobody"));
        assert!(service.assert_all(&[impossible]).is_err());
        assert_eq!(
            service.snapshot().stamp(),
            before,
            "a failed assertion must not publish"
        );
    }

    #[test]
    fn panicking_request_is_contained_and_the_service_keeps_serving() {
        let service = ProbDbService::new(ssn_db());
        let err = service
            .with_snapshot::<()>(|_| panic!("injected request panic"))
            .unwrap_err();
        match err {
            QueryError::RequestPanicked { ref message } => {
                assert!(message.contains("injected"), "payload lost: {err}")
            }
            other => panic!("expected RequestPanicked, got {other:?}"),
        }
        // Subsequent requests — including folds through the same shared
        // structures — still succeed.
        let answer = service.conf(&bills_plan()).unwrap();
        assert!(answer.boolean > 0.0);
        let stats = service.stats();
        assert_eq!(stats.contained_panics, 1);
        assert!(stats.requests >= 2);
    }

    /// The SSN database plus an independent relation T over its own
    /// variable c — conditioning R-only constraints leaves c (and T's warm
    /// cache entries) untouched.
    fn db_with_extra_relation() -> ProbDb {
        let mut db = ssn_db();
        let c = db
            .world_table_mut()
            .add_variable("c", &[(1, 0.6), (2, 0.4)])
            .unwrap();
        let schema = Schema::new("T", &[("V", ColumnType::Int)]);
        let mut t = db.create_relation(schema).unwrap();
        {
            let w = db.world_table();
            t.push(
                Tuple::new(vec![Value::Int(10)]),
                WsDescriptor::from_pairs(w, &[(c, 1)]).unwrap(),
            );
            t.push(
                Tuple::new(vec![Value::Int(20)]),
                WsDescriptor::from_pairs(w, &[(c, 2)]).unwrap(),
            );
        }
        db.insert_relation(t).unwrap();
        db
    }

    fn t_plan() -> Plan {
        Plan::scan("T").project(&["V"])
    }

    fn assert_conf_bits(served: &AnswerConfidences, reference: &AnswerConfidences) {
        assert_eq!(served.tuples.len(), reference.tuples.len());
        for ((t1, p1), (t2, p2)) in served.tuples.iter().zip(&reference.tuples) {
            assert_eq!(t1, t2);
            assert_eq!(p1.to_bits(), p2.to_bits());
        }
        assert_eq!(served.boolean.to_bits(), reference.boolean.to_bits());
    }

    fn reference_conf(db: &ProbDb, plan: &Plan) -> AnswerConfidences {
        crate::planned::planned_answer_confidences_with_options(
            db,
            plan,
            &DecompositionOptions::default(),
            &ParallelOptions::sequential(),
            &SharedDecompositionCache::new(),
        )
        .unwrap()
    }

    #[test]
    fn plan_cache_evicts_oldest_entries_at_capacity() {
        let service = ProbDbService::with_options(
            ssn_db(),
            ServiceOptions {
                plan_capacity: 2,
                ..ServiceOptions::default()
            },
        );
        let plans = [
            Plan::scan("R").project(&["SSN"]),
            Plan::scan("R").project(&["NAME"]),
            Plan::scan("R").select(Predicate::col_eq("NAME", "Bill")),
        ];
        for plan in &plans {
            service.query(plan).unwrap();
        }
        let stats = service.stats();
        assert_eq!(stats.plan_misses, 3);
        assert_eq!(
            stats.plan_evictions, 1,
            "the third insert evicts the oldest"
        );
        // The newest plan is still memoized; the evicted one re-optimizes
        // (bit-identically — eviction is a space policy only).
        service.query(&plans[2]).unwrap();
        assert_eq!(service.stats().plan_hits, 1);
        let rows = service.query(&plans[0]).unwrap();
        assert_eq!(service.stats().plan_misses, 4);
        assert_eq!(rows, service.snapshot().db().query(&plans[0]).unwrap());
    }

    /// The id of the variable named `name` in `db`'s world table.
    fn var_named(db: &ProbDb, name: &str) -> uprob_wsd::VarId {
        db.world_table()
            .iter()
            .find(|(_, info)| info.name == name)
            .unwrap()
            .0
    }

    /// The Boolean ws-set of relation T (`c = 1 ∨ c = 2`) under whatever
    /// id the variable named "c" has in `db`.
    fn t_boolean_set(db: &ProbDb) -> uprob_wsd::WsSet {
        let c = var_named(db, "c");
        let w = db.world_table();
        uprob_wsd::WsSet::from_descriptors(vec![
            WsDescriptor::from_pairs(w, &[(c, 1)]).unwrap(),
            WsDescriptor::from_pairs(w, &[(c, 2)]).unwrap(),
        ])
    }

    #[test]
    fn conditioning_publish_inherits_unmutated_relations_warm_entries() {
        let db = db_with_extra_relation();
        let service = ProbDbService::new(db.clone());
        // Warm the cache with T's confidence fold, then condition on an
        // R-only constraint: c is untouched, so T's entries must survive.
        service.conf(&t_plan()).unwrap();
        let before = service.snapshot();
        assert!(before.cache_stats().entries > 0);
        let warm = before
            .cache()
            .probe(&t_boolean_set(before.db()))
            .expect("the Boolean T fold is in the cacheable band");
        let fd = Constraint::functional_dependency("R", &["SSN"], &["NAME"]);
        let outcome = service.assert_all(std::slice::from_ref(&fd)).unwrap();
        assert!(
            outcome.inherited.inherited > 0,
            "warm T entries must survive conditioning: {:?}",
            outcome.inherited
        );
        assert!(service.snapshot().cache_stats().inherited_entries > 0);
        // The inherited entry, re-keyed to the posterior's variable ids, is
        // bit-identical to the prior value (c's marginal is untouched by
        // an R-only condition).
        let after = service.snapshot();
        let inherited = after
            .cache()
            .probe(&t_boolean_set(after.db()))
            .expect("the remapped T entry was carried forward");
        assert_eq!(warm.to_bits(), inherited.to_bits());
        // Served answers over T are bit-identical to the library call on
        // the conditioned database.
        let served = service.conf(&t_plan()).unwrap();
        let conditioned = crate::constraints::assert_all(
            &db,
            std::slice::from_ref(&fd),
            &ConditioningOptions::default(),
        )
        .unwrap();
        assert_conf_bits(&served, &reference_conf(&conditioned.db, &t_plan()));
    }

    #[test]
    fn delta_publish_inherits_the_whole_cache() {
        let service = ProbDbService::new(db_with_extra_relation());
        service.conf(&t_plan()).unwrap();
        let warm = service.snapshot().cache_stats().entries;
        assert!(warm > 0);
        let outcome = service
            .publish_delta(|delta| {
                let v = delta.add_boolean("n1", 0.9)?;
                let d = WsDescriptor::from_pairs(delta.world_table(), &[(v, 1)])?;
                delta.append("R", Tuple::new(vec![Value::Int(3), Value::str("Ann")]), d)
            })
            .unwrap();
        assert_eq!(outcome.report.touched_relations, vec!["R".to_string()]);
        assert_eq!(outcome.report.appended_rows, 1);
        assert_eq!(
            outcome.inherited.inherited, warm,
            "a pure append inherits every warm entry under the identity remap"
        );
        assert_eq!(outcome.inherited.dropped, 0);
        // Reads over the unmutated relation hit inherited entries,
        // bit-identical to a cold recomputation on the new database.
        let served = service.conf(&t_plan()).unwrap();
        assert_conf_bits(&served, &reference_conf(outcome.snapshot.db(), &t_plan()));
        assert!(service.snapshot().cache_stats().inherited_hits > 0);
    }

    #[test]
    fn delta_conditioning_reuses_violations_and_inherits_posterior_to_posterior() {
        let db = db_with_extra_relation();
        let service = ProbDbService::new(db.clone());
        let fd = Constraint::functional_dependency("R", &["SSN"], &["NAME"]);
        let t_check = Constraint::row_filter(
            "T",
            Predicate::cmp(Expr::col("V"), Comparison::Lt, Expr::val(100i64)),
        );
        let constraints = vec![fd.clone(), t_check.clone()];

        // Round 1: everything is compiled; the posterior matches the full
        // rebuild bit for bit.
        let round1 = service.assert_all_delta(&constraints).unwrap();
        assert_eq!(round1.reused_violations, 0);
        let full1 = crate::constraints::assert_all(&db, &constraints, &Default::default()).unwrap();
        assert_eq!(round1.confidence.to_bits(), full1.confidence.to_bits());
        assert_conf_bits(
            &service.conf(&t_plan()).unwrap(),
            &reference_conf(&full1.db, &t_plan()),
        );

        // Ingest into the prior line without publishing: readers still see
        // the round-1 posterior (bounded staleness).
        let published_before = service.snapshot().stamp();
        let mutate = |delta: &mut DeltaBuilder| {
            let v = delta.add_boolean("n1", 0.9)?;
            let d = WsDescriptor::from_pairs(delta.world_table(), &[(v, 1)])?;
            delta.append("R", Tuple::new(vec![Value::Int(3), Value::str("Ann")]), d)
        };
        let report = service.ingest(mutate).unwrap();
        assert_eq!(report.touched_relations, vec!["R".to_string()]);
        assert_eq!(service.snapshot().stamp(), published_before);

        // Round 2: only the FD (whose relation changed) recompiles; the T
        // check is served from the memo. The posterior equals the full
        // rebuild on the mutated prior, and the warm T entries of the
        // round-1 posterior survive through the composed remap.
        let round2 = service.assert_all_delta(&constraints).unwrap();
        assert_eq!(
            round2.reused_violations, 1,
            "the unmutated T check is reused"
        );
        // The round-1 posterior's query entries mention round-1 fresh
        // conditioning variables, which have no mapping into the round-2
        // posterior: the disjointness check must drop them (conservative,
        // no stale reads) rather than guess.
        assert!(
            round2.inherited.dropped > 0,
            "entries over round-1 fresh variables must be dropped: {:?}",
            round2.inherited
        );
        let mut builder = DeltaBuilder::new(&db);
        mutate(&mut builder).unwrap();
        let (mutated, _) = builder.finish();
        let full2 =
            crate::constraints::assert_all(&mutated, &constraints, &Default::default()).unwrap();
        assert_eq!(round2.confidence.to_bits(), full2.confidence.to_bits());
        let served = service.conf(&t_plan()).unwrap();
        assert_conf_bits(&served, &reference_conf(&full2.db, &t_plan()));
    }

    #[test]
    fn clean_delta_conditioning_inherits_posterior_to_posterior_with_hits() {
        // Constraints that no world violates condition on the universal
        // set: the posterior is content-identical to the prior and the
        // composed posterior → posterior remap is the identity, so every
        // warm entry survives across publishes and keeps getting hit.
        let service = ProbDbService::new(db_with_extra_relation());
        let t_check = Constraint::row_filter(
            "T",
            Predicate::cmp(Expr::col("V"), Comparison::Lt, Expr::val(100i64)),
        );
        let r_key = Constraint::key("R", &["SSN", "NAME"]);
        let constraints = vec![t_check, r_key];
        service.assert_all_delta(&constraints).unwrap();
        service.conf(&t_plan()).unwrap();
        assert!(service.snapshot().cache_stats().entries > 0);
        // Clean ingest into R only; T's violation check is reused and T's
        // warm entries survive into the next posterior.
        service
            .ingest(|delta| {
                let v = delta.add_boolean("n2", 0.5)?;
                let d = WsDescriptor::from_pairs(delta.world_table(), &[(v, 1)])?;
                delta.append("R", Tuple::new(vec![Value::Int(8), Value::str("Eve")]), d)
            })
            .unwrap();
        let round2 = service.assert_all_delta(&constraints).unwrap();
        assert_eq!(round2.reused_violations, 1);
        assert!(
            round2.inherited.inherited > 0,
            "clean conditioning must carry warm entries posterior to posterior: {:?}",
            round2.inherited
        );
        let served = service.conf(&t_plan()).unwrap();
        assert_conf_bits(&served, &reference_conf(round2.snapshot.db(), &t_plan()));
        assert!(
            service.snapshot().cache_stats().inherited_hits > 0,
            "reads over the unmutated relation hit inherited entries"
        );
    }

    #[test]
    fn first_conditioning_publish_after_ingest_inherits_from_the_base_snapshot() {
        // Ingest refreshes the prior line's stamp, but append-only deltas
        // leave the published snapshot's variables as a bit-identical
        // prefix of the prior table — the conditioning remap applies to
        // them verbatim, so even the *first* publish carries the base
        // snapshot's warm entries forward instead of starting cold.
        let service = ProbDbService::new(db_with_extra_relation());
        service.conf(&t_plan()).unwrap();
        assert!(service.snapshot().cache_stats().entries > 0);
        service
            .ingest(|delta| {
                let v = delta.add_boolean("n2", 0.5)?;
                let d = WsDescriptor::from_pairs(delta.world_table(), &[(v, 1)])?;
                delta.append("R", Tuple::new(vec![Value::Int(8), Value::str("Eve")]), d)
            })
            .unwrap();
        let t_check = Constraint::row_filter(
            "T",
            Predicate::cmp(Expr::col("V"), Comparison::Lt, Expr::val(100i64)),
        );
        let outcome = service.assert_all_delta(&[t_check]).unwrap();
        assert!(
            outcome.inherited.inherited > 0,
            "the first publish after ingest must inherit from the base snapshot: {:?}",
            outcome.inherited
        );
        let served = service.conf(&t_plan()).unwrap();
        assert_conf_bits(&served, &reference_conf(outcome.snapshot.db(), &t_plan()));
        assert!(
            service.snapshot().cache_stats().inherited_hits > 0,
            "reads over the unmutated relation hit inherited entries"
        );
    }

    #[test]
    fn concurrent_identical_requests_coalesce_into_one_fold() {
        let service = std::sync::Arc::new(ProbDbService::new(ssn_db()));
        let plan = bills_plan();
        // Warm the plan cache so the race below is about the fold only.
        let expected = service.conf(&plan).unwrap();
        let readers = 8;
        let barrier = std::sync::Barrier::new(readers);
        std::thread::scope(|scope| {
            for _ in 0..readers {
                scope.spawn(|| {
                    barrier.wait();
                    let got = service.conf(&plan).unwrap();
                    assert_eq!(got.boolean.to_bits(), expected.boolean.to_bits());
                });
            }
        });
        let stats = service.stats();
        assert_eq!(
            stats.confidence_folds + stats.coalesced,
            1 + readers as u64,
            "every request either folds or coalesces"
        );
    }
}
