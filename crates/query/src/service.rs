//! The snapshot-isolated concurrent serving layer (ROADMAP item 1).
//!
//! The paper frames `assert[·]` as a database *transformation*: an
//! assertion produces a new conditioned database that subsequent queries
//! run against. This module maps that semantics directly onto concurrency:
//!
//! * a [`Snapshot`] is one immutable database version — the world table,
//!   the U-relations (whose rows embed the ws-descriptor state), and an
//!   [`Arc`]-held [`SharedDecompositionCache`] that the stamp-binding of
//!   PR 2 ties to exactly this version;
//! * a [`ProbDbService`] serves any number of reader threads against the
//!   current snapshot while a writer builds the next one: conditioning
//!   never mutates in place — [`ProbDbService::assert_all`] conditions the
//!   current snapshot into a **new** [`Snapshot`] and publishes it with an
//!   atomic `Arc` swap, so readers either see the whole old version or the
//!   whole new one, never a mix.
//!
//! # Publish protocol
//!
//! `current` is an `RwLock<Arc<Snapshot>>` used only as a swap cell: a
//! reader takes the read lock just long enough to clone the `Arc` (no
//! query work happens under it), and the single writer — serialized by the
//! `writer` mutex — replaces the `Arc` under the write lock. Readers that
//! pinned the old snapshot keep using it; it is freed when the last
//! reference drops.
//!
//! # Plan cache and batched admission
//!
//! Repeated queries skip the optimizer through a plan cache keyed on
//! *(plan fingerprint, snapshot stamp)*: a published snapshot invalidates
//! the cache simply by never matching the old keys. Concurrent `conf`
//! requests for the same *(plan, snapshot)* are coalesced by batched
//! admission: the first requester runs the shared-cache fold on the
//! configured worker pool and every concurrent duplicate waits for — and
//! shares — that one result, so identical requests never compete for the
//! pool (ROADMAP item 5: one pool, not competing pools).
//!
//! # Bit-identity contract
//!
//! A served answer equals the single-owner library call bit for bit at
//! every worker and reader count: the served `query` path is exactly
//! `optimize_plan` + `execute_plan` (the plan cache memoizes the optimizer
//! output, which is a pure function of plan and catalog), the served
//! `conf` path is exactly [`answer_confidences_with_options`] over the
//! snapshot's cache (shared-cache hits are bit-identical to recomputation
//! by the PR 2 contract), and coalesced requests share a result that each
//! of them would have computed bit-identically anyway. The workspace
//! stress test pins this under the CI `UPROB_WORKERS` matrix.
//!
//! # Panic containment
//!
//! Every service entry point runs the request under
//! [`std::panic::catch_unwind`]: a panicking request fails with
//! [`QueryError::RequestPanicked`] instead of unwinding into the caller,
//! and the locks it may have poisoned (the scheduler's and the cache's are
//! poison-tolerant, as are the service's own) stay usable, so subsequent
//! requests succeed.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError, RwLock};

use uprob_core::{
    panic_message, CacheStats, ConditioningOptions, DecompositionOptions, DecompositionStats,
    ParallelOptions, SharedDecompositionCache,
};
use uprob_urel::{execute_plan, optimize_plan, Plan, ProbDb, URelation};
use uprob_wsd::FxHashMap;

use crate::confidence::{answer_confidences_with_options, AnswerConfidences};
use crate::constraints::{assert_all_with_options, Constraint};
use crate::error::QueryError;
use crate::Result;

/// Source of fresh snapshot stamps (0 is reserved, mirroring world-table
/// stamps). Snapshot stamps are distinct from world-table stamps: two
/// snapshots can share an unmutated world table while differing in their
/// relations, and the plan cache must tell them apart.
static NEXT_SNAPSHOT_STAMP: AtomicU64 = AtomicU64::new(1);

fn fresh_snapshot_stamp() -> u64 {
    NEXT_SNAPSHOT_STAMP.fetch_add(1, Ordering::Relaxed)
}

/// One immutable published version of a probabilistic database: the world
/// table and relations (with their ws-descriptor state), plus the shared
/// decomposition cache bound to exactly this version.
///
/// Snapshots are cheap to share (`Arc`) and never mutated after
/// construction; conditioning produces a *new* snapshot (see
/// [`ProbDbService::assert_all`]).
pub struct Snapshot {
    db: ProbDb,
    cache: Arc<SharedDecompositionCache>,
    stamp: u64,
}

impl Snapshot {
    /// Wraps a database as an immutable snapshot with a fresh stamp and an
    /// empty decomposition cache. The cache binds itself to the snapshot's
    /// world table on first use (the PR 2 stamp check), so it can never
    /// serve probabilities computed for a different version.
    pub fn new(db: ProbDb) -> Self {
        Snapshot {
            db,
            cache: Arc::new(SharedDecompositionCache::new()),
            stamp: fresh_snapshot_stamp(),
        }
    }

    /// The database of this snapshot.
    pub fn db(&self) -> &ProbDb {
        &self.db
    }

    /// The snapshot stamp: unique per published version, used to key the
    /// plan cache and the admission table.
    pub fn stamp(&self) -> u64 {
        self.stamp
    }

    /// The decomposition cache bound to this snapshot.
    pub fn cache(&self) -> &Arc<SharedDecompositionCache> {
        &self.cache
    }

    /// Counters of this snapshot's decomposition cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }
}

/// The policy one [`ProbDbService`] applies to every request: the
/// decomposition and conditioning options, and the **explicit** worker
/// policy — the service never consults the environment per request (see
/// [`ParallelOptions::from_env`] for the read-once rationale; resolve the
/// environment once at startup and pass the result in here).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ServiceOptions {
    /// Decomposition policy for every confidence computation.
    pub decomposition: DecompositionOptions,
    /// Conditioning policy for [`ProbDbService::assert_all`].
    pub conditioning: ConditioningOptions,
    /// Worker-count policy shared by every request (one pool policy, not
    /// per-request environment reads).
    pub parallel: ParallelOptions,
}

/// The outcome of a served [`ProbDbService::assert_all`]: the snapshot
/// that was published plus the conditioning summary of
/// [`uprob_core::conditioning::Conditioned`].
pub struct AssertOutcome {
    /// The newly published snapshot (also reachable via
    /// [`ProbDbService::snapshot`] until the next publish).
    pub snapshot: Arc<Snapshot>,
    /// The confidence of the asserted constraint set in the *previous*
    /// snapshot; in the published snapshot it holds with probability 1.
    pub confidence: f64,
    /// Decomposition counters of the conditioning run.
    pub stats: DecompositionStats,
    /// Number of fresh variables introduced (before simplification).
    pub new_variables: usize,
}

/// Aggregate counters of one service (monotone; read with
/// [`ProbDbService::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests admitted (queries, confidence requests and assertions,
    /// including failed ones).
    pub requests: u64,
    /// Plan-cache hits (optimizer skipped).
    pub plan_hits: u64,
    /// Plan-cache misses (optimizer ran, result memoized).
    pub plan_misses: u64,
    /// Confidence folds actually executed (admission leaders).
    pub confidence_folds: u64,
    /// Confidence requests served by waiting for a concurrent identical
    /// fold instead of running their own (admission followers).
    pub coalesced: u64,
    /// Requests that panicked and were contained as
    /// [`QueryError::RequestPanicked`].
    pub contained_panics: u64,
}

impl ServiceStats {
    /// Fraction of plan lookups answered from the plan cache (0 if none).
    pub fn plan_hit_rate(&self) -> f64 {
        let lookups = self.plan_hits + self.plan_misses;
        if lookups == 0 {
            0.0
        } else {
            self.plan_hits as f64 / lookups as f64
        }
    }
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
    confidence_folds: AtomicU64,
    coalesced: AtomicU64,
    contained_panics: AtomicU64,
}

/// One in-flight coalesced confidence fold: the leader fills `slot` and
/// notifies; followers wait on `ready`.
struct Inflight {
    slot: Mutex<Option<Result<AnswerConfidences>>>,
    ready: Condvar,
}

impl Inflight {
    fn new() -> Self {
        Inflight {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        }
    }
}

/// Key of the plan cache and the admission table: (snapshot stamp, plan
/// rendering). The full rendering — not a hash of it — is the key, so two
/// distinct plans can never collide into sharing an optimized form or a
/// coalesced result.
type RequestKey = (u64, String);

/// A concurrent front-end over a probabilistic database: many reader
/// threads run [`query`](ProbDbService::query) /
/// [`conf`](ProbDbService::conf) against a consistent [`Snapshot`] while
/// [`assert_all`](ProbDbService::assert_all) builds and publishes the next
/// one. See the module docs for the publish protocol, the plan cache, the
/// batched admission and the bit-identity contract.
pub struct ProbDbService {
    /// The swap cell holding the current snapshot (see module docs).
    current: RwLock<Arc<Snapshot>>,
    /// Serializes writers (conditioning + publish).
    writer: Mutex<()>,
    options: ServiceOptions,
    /// Optimized-plan memo keyed by (snapshot stamp, plan rendering).
    plans: Mutex<FxHashMap<RequestKey, Arc<Plan>>>,
    /// Admission table of in-flight confidence folds, same key space.
    inflight: Mutex<FxHashMap<RequestKey, Arc<Inflight>>>,
    counters: Counters,
}

impl ProbDbService {
    /// Serves `db` with [`ServiceOptions::default`] (sequential folds).
    pub fn new(db: ProbDb) -> Self {
        ProbDbService::with_options(db, ServiceOptions::default())
    }

    /// Serves `db` under an explicit request policy.
    pub fn with_options(db: ProbDb, options: ServiceOptions) -> Self {
        ProbDbService {
            current: RwLock::new(Arc::new(Snapshot::new(db))),
            writer: Mutex::new(()),
            options,
            plans: Mutex::new(FxHashMap::default()),
            inflight: Mutex::new(FxHashMap::default()),
            counters: Counters::default(),
        }
    }

    /// The request policy of this service.
    pub fn options(&self) -> &ServiceOptions {
        &self.options
    }

    /// Pins the current snapshot: an `Arc` clone taken under a read lock
    /// held only for the clone itself. The returned snapshot stays fully
    /// usable (and internally consistent) across any number of concurrent
    /// publishes.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.current
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Aggregate service counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            requests: self.counters.requests.load(Ordering::Relaxed),
            plan_hits: self.counters.plan_hits.load(Ordering::Relaxed),
            plan_misses: self.counters.plan_misses.load(Ordering::Relaxed),
            confidence_folds: self.counters.confidence_folds.load(Ordering::Relaxed),
            coalesced: self.counters.coalesced.load(Ordering::Relaxed),
            contained_panics: self.counters.contained_panics.load(Ordering::Relaxed),
        }
    }

    /// Evaluates `plan` against the current snapshot through the plan
    /// cache: the optimizer runs at most once per (plan, snapshot) and the
    /// rows are bit-identical to the single-owner `ProbDb::query`.
    ///
    /// # Errors
    ///
    /// Propagates plan-validation errors; a panicking request fails with
    /// [`QueryError::RequestPanicked`].
    pub fn query(&self, plan: &Plan) -> Result<URelation> {
        self.guarded(|| {
            let snapshot = self.snapshot();
            self.query_on(&snapshot, plan)
        })
    }

    /// The `conf()` aggregate of `plan` against the current snapshot:
    /// plan-cached evaluation followed by the shared-cache batch
    /// confidence fold, with concurrent identical requests coalesced into
    /// one fold (see the module docs).
    ///
    /// # Errors
    ///
    /// Propagates plan-validation and decomposition errors; a panicking
    /// request fails with [`QueryError::RequestPanicked`].
    pub fn conf(&self, plan: &Plan) -> Result<AnswerConfidences> {
        self.guarded(|| {
            let snapshot = self.snapshot();
            self.conf_coalesced(&snapshot, plan)
        })
    }

    /// [`conf`](ProbDbService::conf) against an explicitly pinned
    /// snapshot (e.g. to keep a multi-query read transaction consistent
    /// across publishes). Requests for the *current* snapshot share its
    /// plan cache and admission table entries.
    ///
    /// # Errors
    ///
    /// As for [`conf`](ProbDbService::conf).
    pub fn conf_pinned(&self, snapshot: &Arc<Snapshot>, plan: &Plan) -> Result<AnswerConfidences> {
        self.guarded(|| self.conf_coalesced(snapshot, plan))
    }

    /// Runs an arbitrary read-only request against a pinned snapshot under
    /// the service's panic containment — the entry point for callers that
    /// compose several reads into one consistent unit.
    ///
    /// # Errors
    ///
    /// Whatever `request` returns; a panic inside `request` fails with
    /// [`QueryError::RequestPanicked`] instead of unwinding.
    pub fn with_snapshot<T>(&self, request: impl FnOnce(&Snapshot) -> Result<T>) -> Result<T> {
        self.guarded(|| {
            let snapshot = self.snapshot();
            request(&snapshot)
        })
    }

    /// `assert[·]` as a publish: conditions the current snapshot on
    /// `constraints` (single-pass, parallel violation compilation) and
    /// publishes the posterior database as a new [`Snapshot`] with a fresh
    /// decomposition cache. Readers keep their pinned snapshots; writers
    /// are serialized.
    ///
    /// # Errors
    ///
    /// Propagates constraint-validation and conditioning errors (e.g.
    /// [`QueryError::UnsatisfiableConstraint`]); nothing is published on
    /// error. A panicking request fails with
    /// [`QueryError::RequestPanicked`].
    pub fn assert_all(&self, constraints: &[Constraint]) -> Result<AssertOutcome> {
        self.guarded(|| {
            let _writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
            let snapshot = self.snapshot();
            let conditioned = assert_all_with_options(
                snapshot.db(),
                constraints,
                &self.options.conditioning,
                &self.options.parallel,
            )?;
            let confidence = conditioned.confidence;
            let stats = conditioned.stats;
            let new_variables = conditioned.new_variables;
            Ok(AssertOutcome {
                snapshot: self.publish_snapshot(conditioned.db),
                confidence,
                stats,
                new_variables,
            })
        })
    }

    /// Publishes `db` as the new current snapshot without conditioning
    /// (e.g. after loading fresh data). Serialized with
    /// [`assert_all`](ProbDbService::assert_all).
    pub fn publish(&self, db: ProbDb) -> Arc<Snapshot> {
        let _writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        self.publish_snapshot(db)
    }

    /// The swap: wraps `db`, replaces `current`, and prunes plan-cache
    /// entries of retired snapshots (pinned-snapshot requests re-insert on
    /// demand, so pruning is a space policy, never a correctness one).
    fn publish_snapshot(&self, db: ProbDb) -> Arc<Snapshot> {
        let next = Arc::new(Snapshot::new(db));
        *self.current.write().unwrap_or_else(PoisonError::into_inner) = next.clone();
        let live = next.stamp();
        self.plans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .retain(|(stamp, _), _| *stamp == live);
        next
    }

    /// Runs one request under panic containment (see the module docs).
    fn guarded<T>(&self, request: impl FnOnce() -> Result<T>) -> Result<T> {
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        match catch_unwind(AssertUnwindSafe(request)) {
            Ok(result) => result,
            Err(payload) => {
                self.counters
                    .contained_panics
                    .fetch_add(1, Ordering::Relaxed);
                Err(QueryError::RequestPanicked {
                    message: panic_message(payload.as_ref()),
                })
            }
        }
    }

    /// The optimized form of `plan` for `snapshot`, memoized: a pure
    /// function of (plan rendering, snapshot), so a cache hit is
    /// bit-identical to re-optimizing.
    fn optimized_plan(
        &self,
        snapshot: &Snapshot,
        plan: &Plan,
        key: &RequestKey,
    ) -> Result<Arc<Plan>> {
        {
            let plans = self.plans.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(hit) = plans.get(key) {
                self.counters.plan_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(hit.clone());
            }
        }
        self.counters.plan_misses.fetch_add(1, Ordering::Relaxed);
        let optimized = Arc::new(optimize_plan(plan, snapshot.db())?);
        self.plans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(key.clone(), optimized.clone());
        Ok(optimized)
    }

    fn query_on(&self, snapshot: &Snapshot, plan: &Plan) -> Result<URelation> {
        let key = (snapshot.stamp(), format!("{plan:?}"));
        let optimized = self.optimized_plan(snapshot, plan, &key)?;
        Ok(execute_plan(snapshot.db(), &optimized)?)
    }

    /// The coalesced confidence fold: first requester per (snapshot, plan)
    /// computes, concurrent duplicates share the result.
    fn conf_coalesced(&self, snapshot: &Arc<Snapshot>, plan: &Plan) -> Result<AnswerConfidences> {
        let key = (snapshot.stamp(), format!("{plan:?}"));
        let (entry, leader) = {
            let mut inflight = self.inflight.lock().unwrap_or_else(PoisonError::into_inner);
            match inflight.get(&key) {
                Some(entry) => (entry.clone(), false),
                None => {
                    let entry = Arc::new(Inflight::new());
                    inflight.insert(key.clone(), entry.clone());
                    (entry, true)
                }
            }
        };
        if leader {
            self.counters
                .confidence_folds
                .fetch_add(1, Ordering::Relaxed);
            // Contain panics *inside* the fold here too: the slot must be
            // filled and the admission entry removed no matter what, or
            // followers would wait forever.
            let result =
                match catch_unwind(AssertUnwindSafe(|| self.conf_fold(snapshot, plan, &key))) {
                    Ok(result) => result,
                    Err(payload) => Err(QueryError::RequestPanicked {
                        message: panic_message(payload.as_ref()),
                    }),
                };
            {
                let mut slot = entry.slot.lock().unwrap_or_else(PoisonError::into_inner);
                *slot = Some(result.clone());
                entry.ready.notify_all();
            }
            self.inflight
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .remove(&key);
            result
        } else {
            self.counters.coalesced.fetch_add(1, Ordering::Relaxed);
            let mut slot = entry.slot.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(result) = slot.as_ref() {
                    return result.clone();
                }
                slot = entry
                    .ready
                    .wait(slot)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    /// One actual fold: plan-cached evaluation + the shared-cache batch
    /// confidence path on the configured worker pool.
    fn conf_fold(
        &self,
        snapshot: &Snapshot,
        plan: &Plan,
        key: &RequestKey,
    ) -> Result<AnswerConfidences> {
        let optimized = self.optimized_plan(snapshot, plan, key)?;
        let answer = execute_plan(snapshot.db(), &optimized)?;
        answer_confidences_with_options(
            &answer,
            snapshot.db().world_table(),
            &self.options.decomposition,
            &self.options.parallel,
            snapshot.cache(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uprob_urel::{ColumnType, Predicate, Schema, Tuple, Value};
    use uprob_wsd::WsDescriptor;

    /// The SSN database of Figure 2.
    fn ssn_db() -> ProbDb {
        let mut db = ProbDb::new();
        let j = db
            .world_table_mut()
            .add_variable("j", &[(1, 0.2), (7, 0.8)])
            .unwrap();
        let b = db
            .world_table_mut()
            .add_variable("b", &[(4, 0.3), (7, 0.7)])
            .unwrap();
        let schema = Schema::new("R", &[("SSN", ColumnType::Int), ("NAME", ColumnType::Str)]);
        let mut r = db.create_relation(schema).unwrap();
        {
            let w = db.world_table();
            r.push(
                Tuple::new(vec![Value::Int(1), Value::str("John")]),
                WsDescriptor::from_pairs(w, &[(j, 1)]).unwrap(),
            );
            r.push(
                Tuple::new(vec![Value::Int(7), Value::str("John")]),
                WsDescriptor::from_pairs(w, &[(j, 7)]).unwrap(),
            );
            r.push(
                Tuple::new(vec![Value::Int(4), Value::str("Bill")]),
                WsDescriptor::from_pairs(w, &[(b, 4)]).unwrap(),
            );
            r.push(
                Tuple::new(vec![Value::Int(7), Value::str("Bill")]),
                WsDescriptor::from_pairs(w, &[(b, 7)]).unwrap(),
            );
        }
        db.insert_relation(r).unwrap();
        db
    }

    fn bills_plan() -> Plan {
        Plan::scan("R")
            .select(Predicate::col_eq("NAME", "Bill"))
            .project(&["SSN"])
    }

    #[test]
    fn served_answers_are_bit_identical_to_the_library_call() {
        let db = ssn_db();
        let service = ProbDbService::with_options(
            db.clone(),
            ServiceOptions {
                parallel: ParallelOptions::new(4),
                ..ServiceOptions::default()
            },
        );
        let plan = bills_plan();
        let served = service.conf(&plan).unwrap();
        let reference = crate::planned::planned_answer_confidences_with_options(
            &db,
            &plan,
            &service.options().decomposition,
            &ParallelOptions::sequential(),
            &SharedDecompositionCache::new(),
        )
        .unwrap();
        assert_eq!(served.tuples.len(), reference.tuples.len());
        for ((t1, p1), (t2, p2)) in served.tuples.iter().zip(&reference.tuples) {
            assert_eq!(t1, t2);
            assert_eq!(p1.to_bits(), p2.to_bits());
        }
        assert_eq!(served.boolean.to_bits(), reference.boolean.to_bits());
        // The served rows match the single-owner query as well.
        assert_eq!(service.query(&plan).unwrap(), db.query(&plan).unwrap());
    }

    #[test]
    fn plan_cache_hits_on_repeats_and_invalidates_on_publish() {
        let service = ProbDbService::new(ssn_db());
        let plan = bills_plan();
        service.conf(&plan).unwrap();
        service.conf(&plan).unwrap();
        let stats = service.stats();
        assert_eq!(
            stats.plan_misses, 1,
            "one optimization per (plan, snapshot)"
        );
        assert!(stats.plan_hits >= 1);
        assert!(stats.plan_hit_rate() > 0.0);
        // Publishing a new snapshot retires the old keys: the same plan
        // re-optimizes exactly once more.
        let before = service.snapshot().stamp();
        service
            .assert_all(&[Constraint::functional_dependency("R", &["SSN"], &["NAME"])])
            .unwrap();
        assert_ne!(service.snapshot().stamp(), before);
        service.conf(&plan).unwrap();
        assert_eq!(service.stats().plan_misses, 2);
    }

    #[test]
    fn assert_all_publishes_a_conditioned_snapshot() {
        let db = ssn_db();
        let service = ProbDbService::new(db.clone());
        let pinned = service.snapshot();
        let fd = Constraint::functional_dependency("R", &["SSN"], &["NAME"]);
        let outcome = service.assert_all(std::slice::from_ref(&fd)).unwrap();
        assert!((outcome.confidence - 0.44).abs() < 1e-9);
        assert_eq!(outcome.snapshot.stamp(), service.snapshot().stamp());
        // The reader's pinned snapshot still answers from the prior: the
        // publish did not mutate it.
        let prior = service.conf_pinned(&pinned, &bills_plan()).unwrap();
        let reference = crate::planned::planned_answer_confidences_with_options(
            &db,
            &bills_plan(),
            &service.options().decomposition,
            &ParallelOptions::sequential(),
            &SharedDecompositionCache::new(),
        )
        .unwrap();
        assert_eq!(prior.boolean.to_bits(), reference.boolean.to_bits());
        // Served answers against the new snapshot match the single-owner
        // call on the conditioned database.
        let conditioned = crate::constraints::assert_all(
            &db,
            std::slice::from_ref(&fd),
            &ConditioningOptions::default(),
        )
        .unwrap();
        let served = service.conf(&bills_plan()).unwrap();
        let library = crate::planned::planned_answer_confidences_with_options(
            &conditioned.db,
            &bills_plan(),
            &service.options().decomposition,
            &ParallelOptions::sequential(),
            &SharedDecompositionCache::new(),
        )
        .unwrap();
        assert_eq!(served.boolean.to_bits(), library.boolean.to_bits());
        for ((t1, p1), (t2, p2)) in served.tuples.iter().zip(&library.tuples) {
            assert_eq!(t1, t2);
            assert_eq!(p1.to_bits(), p2.to_bits());
        }
    }

    #[test]
    fn unsatisfiable_assertion_publishes_nothing() {
        let service = ProbDbService::new(ssn_db());
        let before = service.snapshot().stamp();
        let impossible = Constraint::row_filter("R", Predicate::col_eq("NAME", "Nobody"));
        assert!(service.assert_all(&[impossible]).is_err());
        assert_eq!(
            service.snapshot().stamp(),
            before,
            "a failed assertion must not publish"
        );
    }

    #[test]
    fn panicking_request_is_contained_and_the_service_keeps_serving() {
        let service = ProbDbService::new(ssn_db());
        let err = service
            .with_snapshot::<()>(|_| panic!("injected request panic"))
            .unwrap_err();
        match err {
            QueryError::RequestPanicked { ref message } => {
                assert!(message.contains("injected"), "payload lost: {err}")
            }
            other => panic!("expected RequestPanicked, got {other:?}"),
        }
        // Subsequent requests — including folds through the same shared
        // structures — still succeed.
        let answer = service.conf(&bills_plan()).unwrap();
        assert!(answer.boolean > 0.0);
        let stats = service.stats();
        assert_eq!(stats.contained_panics, 1);
        assert!(stats.requests >= 2);
    }

    #[test]
    fn concurrent_identical_requests_coalesce_into_one_fold() {
        let service = std::sync::Arc::new(ProbDbService::new(ssn_db()));
        let plan = bills_plan();
        // Warm the plan cache so the race below is about the fold only.
        let expected = service.conf(&plan).unwrap();
        let readers = 8;
        let barrier = std::sync::Barrier::new(readers);
        std::thread::scope(|scope| {
            for _ in 0..readers {
                scope.spawn(|| {
                    barrier.wait();
                    let got = service.conf(&plan).unwrap();
                    assert_eq!(got.boolean.to_bits(), expected.boolean.to_bits());
                });
            }
        });
        let stats = service.stats();
        assert_eq!(
            stats.confidence_folds + stats.coalesced,
            1 + readers as u64,
            "every request either folds or coalesces"
        );
    }
}
