//! `conf()` over logical query plans: evaluate a [`Plan`] through the
//! optimizing, pipelined executor of `uprob-urel` and feed the answer
//! straight into the batch confidence machinery of [`crate::confidence`].
//!
//! These helpers are thin on purpose: `ProbDb::query` produces a plain
//! `URelation`, so everything in this crate — the shared-decomposition-
//! cache batch paths, the strategy engine with its sampling fallback, and
//! `assert`-style conditioning — composes with planned answers exactly as
//! with eagerly built ones. Because the pipelined executor emits rows in
//! the same order as the eager reference, the exact confidences of a
//! planned answer are **bit-identical** to the eager path (the golden
//! strategy tests pin this).

use uprob_core::{
    ConfidenceStrategy, DecompositionOptions, ParallelOptions, SharedDecompositionCache,
};
use uprob_urel::{Plan, ProbDb};

use crate::confidence::{
    answer_confidences_with_cache, answer_confidences_with_options,
    answer_confidences_with_strategy, answer_confidences_with_strategy_options, boolean_confidence,
    AnswerConfidences, StrategyAnswerConfidences,
};
use crate::Result;

/// `select ..., conf() from <plan> group by ...` in one call: evaluates
/// `plan` with [`ProbDb::query`] (rule-based optimization + pipelined
/// hash-join execution) and runs the cache-shared batch confidence path
/// over the answer. See [`crate::confidence::answer_confidences`] for the
/// batch semantics (`threads`, determinism, statistics).
///
/// # Errors
///
/// Propagates plan-validation errors and decomposition errors.
pub fn planned_answer_confidences(
    db: &ProbDb,
    plan: &Plan,
    options: &DecompositionOptions,
    threads: Option<usize>,
) -> Result<AnswerConfidences> {
    planned_answer_confidences_with_cache(
        db,
        plan,
        options,
        threads,
        &SharedDecompositionCache::new(),
    )
}

/// [`planned_answer_confidences`] against a caller-held per-database
/// cache: repeated (or overlapping) planned queries over the same database
/// reuse every decomposition any of them solved.
///
/// # Errors
///
/// Propagates plan-validation errors and decomposition errors.
pub fn planned_answer_confidences_with_cache(
    db: &ProbDb,
    plan: &Plan,
    options: &DecompositionOptions,
    threads: Option<usize>,
    cache: &SharedDecompositionCache,
) -> Result<AnswerConfidences> {
    let answer = db.query(plan)?;
    answer_confidences_with_cache(&answer, db.world_table(), options, threads, cache)
}

/// [`planned_answer_confidences`] under an explicit
/// [`ConfidenceStrategy`]: `Exact`, `Approximate(ε, δ)` or `Hybrid` with
/// the transparent exact→sampling fallback, per-tuple
/// [`uprob_core::ConfidenceReport`]s included.
///
/// # Errors
///
/// Propagates plan-validation errors, exact-path errors and sampling
/// errors.
pub fn planned_answer_confidences_with_strategy(
    db: &ProbDb,
    plan: &Plan,
    options: &DecompositionOptions,
    strategy: &ConfidenceStrategy,
    threads: Option<usize>,
) -> Result<StrategyAnswerConfidences> {
    let answer = db.query(plan)?;
    answer_confidences_with_strategy(&answer, db.world_table(), options, strategy, threads)
}

/// [`planned_answer_confidences_with_cache`] with explicit
/// [`ParallelOptions`]: the batch places the workers as
/// [`crate::confidence::answer_confidences_with_options`] does — wide
/// answers fan the tuples out, narrow answers parallelize inside each
/// decomposition — with bit-identical probabilities either way.
///
/// # Errors
///
/// Propagates plan-validation errors and decomposition errors.
pub fn planned_answer_confidences_with_options(
    db: &ProbDb,
    plan: &Plan,
    options: &DecompositionOptions,
    parallel: &ParallelOptions,
    cache: &SharedDecompositionCache,
) -> Result<AnswerConfidences> {
    let answer = db.query(plan)?;
    answer_confidences_with_options(&answer, db.world_table(), options, parallel, cache)
}

/// [`planned_answer_confidences_with_strategy`] with explicit
/// [`ParallelOptions`] (see
/// [`crate::confidence::answer_confidences_with_strategy_options`]).
///
/// # Errors
///
/// Propagates plan-validation errors, exact-path errors and sampling
/// errors.
pub fn planned_answer_confidences_with_strategy_options(
    db: &ProbDb,
    plan: &Plan,
    options: &DecompositionOptions,
    strategy: &ConfidenceStrategy,
    parallel: &ParallelOptions,
) -> Result<StrategyAnswerConfidences> {
    let answer = db.query(plan)?;
    answer_confidences_with_strategy_options(&answer, db.world_table(), options, strategy, parallel)
}

/// `select conf() from <plan>`: the Boolean confidence of a planned query
/// (probability that the answer is non-empty).
///
/// # Errors
///
/// Propagates plan-validation errors and decomposition errors.
pub fn planned_boolean_confidence(
    db: &ProbDb,
    plan: &Plan,
    options: &DecompositionOptions,
) -> Result<f64> {
    let answer = db.query(plan)?;
    boolean_confidence(&answer, db.world_table(), options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::confidence::answer_confidences;
    use uprob_urel::{algebra, ColumnType, Predicate, Schema, Tuple, Value};
    use uprob_wsd::WsDescriptor;

    /// The SSN database of Figure 2.
    fn ssn_db() -> ProbDb {
        let mut db = ProbDb::new();
        let j = db
            .world_table_mut()
            .add_variable("j", &[(1, 0.2), (7, 0.8)])
            .unwrap();
        let b = db
            .world_table_mut()
            .add_variable("b", &[(4, 0.3), (7, 0.7)])
            .unwrap();
        let schema = Schema::new("R", &[("SSN", ColumnType::Int), ("NAME", ColumnType::Str)]);
        let mut r = db.create_relation(schema).unwrap();
        {
            let w = db.world_table();
            r.push(
                Tuple::new(vec![Value::Int(1), Value::str("John")]),
                WsDescriptor::from_pairs(w, &[(j, 1)]).unwrap(),
            );
            r.push(
                Tuple::new(vec![Value::Int(7), Value::str("John")]),
                WsDescriptor::from_pairs(w, &[(j, 7)]).unwrap(),
            );
            r.push(
                Tuple::new(vec![Value::Int(4), Value::str("Bill")]),
                WsDescriptor::from_pairs(w, &[(b, 4)]).unwrap(),
            );
            r.push(
                Tuple::new(vec![Value::Int(7), Value::str("Bill")]),
                WsDescriptor::from_pairs(w, &[(b, 7)]).unwrap(),
            );
        }
        db.insert_relation(r).unwrap();
        db
    }

    #[test]
    fn planned_conf_is_bit_identical_to_the_eager_answer() {
        let db = ssn_db();
        let options = DecompositionOptions::default();
        let plan = uprob_urel::Plan::scan("R")
            .select(Predicate::col_eq("NAME", "Bill"))
            .project(&["SSN"]);
        let planned = planned_answer_confidences(&db, &plan, &options, Some(1)).unwrap();
        let eager_answer = {
            let bills = algebra::select(
                db.relation("R").unwrap(),
                &Predicate::col_eq("NAME", "Bill"),
                "Bills",
            )
            .unwrap();
            algebra::project(&bills, &["SSN"], "Q").unwrap()
        };
        let eager = answer_confidences(&eager_answer, db.world_table(), &options, Some(1)).unwrap();
        assert_eq!(planned.tuples.len(), eager.tuples.len());
        for ((t1, p1), (t2, p2)) in planned.tuples.iter().zip(&eager.tuples) {
            assert_eq!(t1, t2);
            assert_eq!(p1.to_bits(), p2.to_bits());
        }
        assert_eq!(planned.boolean.to_bits(), eager.boolean.to_bits());
        assert!((planned.tuples[0].1 - 0.3).abs() < 1e-12);
        assert!((planned.tuples[1].1 - 0.7).abs() < 1e-12);
    }

    #[test]
    fn planned_strategies_and_boolean_confidence() {
        let db = ssn_db();
        let options = DecompositionOptions::default();
        // Example 2.3: the FD-violation self-join has confidence .56.
        let violation = uprob_urel::Plan::scan("R")
            .join_on(
                uprob_urel::Plan::scan("R").rename("R2"),
                Predicate::cols_eq("SSN", "R2.SSN").and(Predicate::cmp(
                    uprob_urel::Expr::col("NAME"),
                    uprob_urel::Comparison::Ne,
                    uprob_urel::Expr::col("R2.NAME"),
                )),
            )
            .project(&[]);
        let p = planned_boolean_confidence(&db, &violation, &options).unwrap();
        assert!((p - 0.56).abs() < 1e-12);

        let names = uprob_urel::Plan::scan("R").project(&["NAME"]);
        let exact = planned_answer_confidences_with_strategy(
            &db,
            &names,
            &options,
            &ConfidenceStrategy::Exact,
            Some(1),
        )
        .unwrap();
        let hybrid = planned_answer_confidences_with_strategy(
            &db,
            &names,
            &options,
            &ConfidenceStrategy::hybrid(1_000_000, 0.1, 0.01),
            Some(1),
        )
        .unwrap();
        assert_eq!(hybrid.sampled_tuples(), 0);
        for ((t1, r1), (t2, r2)) in exact.tuples.iter().zip(&hybrid.tuples) {
            assert_eq!(t1, t2);
            assert_eq!(r1.probability.to_bits(), r2.probability.to_bits());
        }
        // A cache shared across two planned queries reports reuse.
        let cache = SharedDecompositionCache::new();
        let first =
            planned_answer_confidences_with_cache(&db, &names, &options, Some(1), &cache).unwrap();
        let second =
            planned_answer_confidences_with_cache(&db, &names, &options, Some(1), &cache).unwrap();
        assert_eq!(first.tuples, second.tuples);
        assert!(second.stats.cache_hits > 0, "warm run must hit the cache");
    }

    #[test]
    fn planned_errors_propagate() {
        let db = ssn_db();
        let options = DecompositionOptions::default();
        let bad = uprob_urel::Plan::scan("NOPE");
        assert!(matches!(
            planned_boolean_confidence(&db, &bad, &options),
            Err(crate::QueryError::Urel(_))
        ));
    }
}
