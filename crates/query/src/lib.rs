//! # uprob-query — queries with `conf()` and constraint-based conditioning
//!
//! The user-facing layer that ties the relational algebra of `uprob-urel`
//! to the exact confidence computation and conditioning of `uprob-core`:
//!
//! * [`confidence`]: the `conf()` aggregate — per-tuple confidence values of
//!   a query result, and the confidence of Boolean queries;
//! * [`constraints`]: integrity constraints (functional dependencies, keys,
//!   row-level predicates, inclusion dependencies / foreign keys,
//!   cross-relation denial constraints and arbitrary Boolean violation
//!   plans), validated up front and compiled — through the optimized
//!   pipelined executor — into the ws-set of the worlds that *satisfy*
//!   them; the `assert[·]` operation that conditions a database on a
//!   constraint (Section 5); and the single-pass `assert_all` that
//!   conditions on a whole constraint set at once;
//! * the confidence comparison predicates that motivate exact computation
//!   in the paper (e.g. `conf(t) = 1`, "certain answers");
//! * [`planned`]: the same `conf()` aggregates over logical query plans —
//!   `ProbDb::query(plan)` (rule-based optimization + pipelined hash-join
//!   execution) composed with the batch confidence paths in one call;
//! * [`service`]: the snapshot-isolated concurrent serving layer —
//!   [`ProbDbService`] serves `query`/`conf`/`assert_all` to any number of
//!   threads against immutable [`Snapshot`]s, publishing conditioned
//!   databases by atomic swap, with a per-snapshot plan cache and batched
//!   admission of identical confidence requests.
//!
//! ## Example: the introduction's data-cleaning scenario
//!
//! ```
//! use uprob_query::confidence::tuple_confidences;
//! use uprob_query::constraints::{assert_constraint, Constraint};
//! use uprob_urel::{ColumnType, Predicate, ProbDb, Schema, Tuple, Value, algebra};
//! use uprob_wsd::WsDescriptor;
//!
//! // The SSN database of Figure 2.
//! let mut db = ProbDb::new();
//! let j = db.world_table_mut().add_variable("j", &[(1, 0.2), (7, 0.8)]).unwrap();
//! let b = db.world_table_mut().add_variable("b", &[(4, 0.3), (7, 0.7)]).unwrap();
//! let schema = Schema::new("R", &[("SSN", ColumnType::Int), ("NAME", ColumnType::Str)]);
//! let mut r = db.create_relation(schema).unwrap();
//! {
//!     let w = db.world_table();
//!     r.push(Tuple::new(vec![Value::Int(1), Value::str("John")]),
//!            WsDescriptor::from_pairs(w, &[(j, 1)]).unwrap());
//!     r.push(Tuple::new(vec![Value::Int(7), Value::str("John")]),
//!            WsDescriptor::from_pairs(w, &[(j, 7)]).unwrap());
//!     r.push(Tuple::new(vec![Value::Int(4), Value::str("Bill")]),
//!            WsDescriptor::from_pairs(w, &[(b, 4)]).unwrap());
//!     r.push(Tuple::new(vec![Value::Int(7), Value::str("Bill")]),
//!            WsDescriptor::from_pairs(w, &[(b, 7)]).unwrap());
//! }
//! db.insert_relation(r).unwrap();
//!
//! // assert[SSN -> NAME]: social security numbers are unique.
//! let fd = Constraint::functional_dependency("R", &["SSN"], &["NAME"]);
//! let conditioned = assert_constraint(&db, &fd, &Default::default()).unwrap();
//! assert!((conditioned.confidence - 0.44).abs() < 1e-9);
//!
//! // select SSN, conf() from R where NAME = 'Bill' group by SSN;
//! let bills = algebra::select(
//!     conditioned.db.relation("R").unwrap(),
//!     &Predicate::col_eq("NAME", "Bill"),
//!     "Bills",
//! ).unwrap();
//! let answers = tuple_confidences(&bills, conditioned.db.world_table(), &Default::default()).unwrap();
//! // P(Bill has SSN 4 | the FD holds) = .3/.44 ≈ .68.
//! let p4 = answers.iter().find(|(t, _)| t.get(0) == Some(&Value::Int(4))).unwrap().1;
//! assert!((p4 - 0.3 / 0.44).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod confidence;
pub mod constraints;
pub mod error;
pub mod planned;
pub mod service;

pub use confidence::{
    answer_confidences, answer_confidences_with_cache, answer_confidences_with_options,
    answer_confidences_with_strategy, answer_confidences_with_strategy_options, boolean_confidence,
    certain_tuples, possible_tuples, tuple_confidences, tuple_confidences_sequential,
    AnswerConfidences, StrategyAnswerConfidences,
};
pub use constraints::{
    assert_all, assert_all_delta, assert_all_with_options, assert_all_with_strategy,
    assert_constraint, assert_constraint_with_strategy, Assertion, Constraint, EstimatedAssertion,
    ViolationMemo,
};
pub use error::QueryError;
pub use planned::{
    planned_answer_confidences, planned_answer_confidences_with_cache,
    planned_answer_confidences_with_options, planned_answer_confidences_with_strategy,
    planned_answer_confidences_with_strategy_options, planned_boolean_confidence,
};
pub use service::{
    AssertOutcome, DeltaOutcome, ProbDbService, ServiceOptions, ServiceStats, Snapshot,
};

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, QueryError>;
