//! Variable-ordering heuristics for the Davis–Putnam-style decomposition
//! (Section 4.2).
//!
//! When the decomposition has to eliminate a variable, the choice of
//! variable strongly influences the size of the resulting ws-tree. The
//! paper proposes two heuristics:
//!
//! * **minlog** (Figure 6): choose the variable minimising
//!   `log(Σ_i 2^{s_i})`, where `s_i = |S_{x→i} ∪ T|` is the size of the
//!   sub-problem for alternative `i`; the estimate is computed incrementally
//!   to avoid summing huge numbers.
//! * **minmax**: choose the variable minimising the size of the *largest*
//!   sub-problem `max_i |S_{x→i} ∪ T|` (the heuristic of Birnbaum &
//!   Lozinskii used for DP model counting, which the paper benchmarks
//!   against).
//!
//! Two simple baselines are included for ablation experiments.

use std::collections::BTreeMap;

use uprob_wsd::{ValueIndex, VarId, WorldTable, WsSet};

/// The variable-ordering heuristic used by variable elimination.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum VariableHeuristic {
    /// The paper's main heuristic (Figure 6): minimise the logarithm of the
    /// estimated total cost `Σ_i 2^{s_i}`.
    #[default]
    MinLog,
    /// Minimise the size of the largest sub-problem (`max_i s_i`).
    MinMax,
    /// Always eliminate the smallest [`VarId`] occurring in the ws-set
    /// (a deliberately naive baseline).
    FirstVariable,
    /// Eliminate the variable occurring in the most ws-descriptors
    /// (a frequency baseline).
    MostFrequent,
}

impl VariableHeuristic {
    /// All heuristics, for sweeps in tests and benchmarks.
    pub const ALL: [VariableHeuristic; 4] = [
        VariableHeuristic::MinLog,
        VariableHeuristic::MinMax,
        VariableHeuristic::FirstVariable,
        VariableHeuristic::MostFrequent,
    ];

    /// Short name used by the benchmark harness.
    pub fn name(self) -> &'static str {
        match self {
            VariableHeuristic::MinLog => "minlog",
            VariableHeuristic::MinMax => "minmax",
            VariableHeuristic::FirstVariable => "firstvar",
            VariableHeuristic::MostFrequent => "mostfreq",
        }
    }
}

/// Occurrence statistics of one variable within a ws-set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VariableOccurrence {
    /// The variable.
    pub var: VarId,
    /// Number of descriptors mentioning the variable with each value
    /// (only values that actually occur are listed).
    pub value_counts: BTreeMap<ValueIndex, usize>,
    /// Total number of descriptors mentioning the variable.
    pub occurrences: usize,
}

impl VariableOccurrence {
    /// Size of the ws-set `T` of descriptors *not* mentioning the variable,
    /// given the total ws-set size.
    pub fn tail_size(&self, set_size: usize) -> usize {
        set_size - self.occurrences
    }
}

/// Collects occurrence statistics for every variable of the ws-set, in
/// [`VarId`] order (deterministic).
pub fn collect_occurrences(set: &WsSet) -> Vec<VariableOccurrence> {
    let mut map: BTreeMap<VarId, VariableOccurrence> = BTreeMap::new();
    for descriptor in set.iter() {
        for assignment in descriptor.iter() {
            let entry = map
                .entry(assignment.var)
                .or_insert_with(|| VariableOccurrence {
                    var: assignment.var,
                    value_counts: BTreeMap::new(),
                    occurrences: 0,
                });
            *entry.value_counts.entry(assignment.value).or_insert(0) += 1;
            entry.occurrences += 1;
        }
    }
    map.into_values().collect()
}

/// The cost estimate of Figure 6 (base `k = 2`): an incremental computation
/// of `log2(Σ_i 2^{s_i})` where `s_i = |S_{x→i} ∪ T|` for the alternatives
/// `i` of `x` occurring in `S`, plus one term `2^{|T|}` if some alternative
/// of `x` does not occur in `S` (in which case `T` is translated once).
pub fn minlog_estimate(
    occurrence: &VariableOccurrence,
    set_size: usize,
    domain_size: usize,
) -> f64 {
    let tail = occurrence.tail_size(set_size) as f64;
    let missing_assignment = occurrence.value_counts.len() < domain_size;
    let mut estimate = if missing_assignment { tail } else { 0.0 };
    for &count in occurrence.value_counts.values() {
        if count == 0 {
            continue;
        }
        let s_j = count as f64 + tail;
        // e := e + log2(1 + 2^(s_j - e)), the incremental log-sum-exp of
        // Figure 6, which avoids forming the potentially huge sums directly.
        // uprob-lint: allow(num-raw-accum) -- Figure 6 log-sum-exp recurrence, not a plain sum; each step rescales the accumulator
        estimate += (1.0 + (s_j - estimate).exp2()).log2();
    }
    estimate
}

/// The minmax cost estimate: the size of the largest sub-problem
/// `max_i |S_{x→i} ∪ T|`.
pub fn minmax_estimate(occurrence: &VariableOccurrence, set_size: usize) -> f64 {
    let tail = occurrence.tail_size(set_size);
    occurrence
        .value_counts
        .values()
        .map(|&count| (count + tail) as f64)
        .fold(0.0, f64::max)
}

/// Chooses the variable to eliminate next according to `heuristic`.
///
/// Returns `None` if the ws-set mentions no variable (it is then either
/// empty or `{∅}` and the decomposition terminates). Ties are broken by the
/// smallest [`VarId`], which makes the decomposition deterministic.
pub fn choose_variable(
    set: &WsSet,
    table: &WorldTable,
    heuristic: VariableHeuristic,
) -> Option<VarId> {
    let occurrences = collect_occurrences(set);
    if occurrences.is_empty() {
        return None;
    }
    let set_size = set.len();
    match heuristic {
        VariableHeuristic::FirstVariable => occurrences.first().map(|o| o.var),
        VariableHeuristic::MostFrequent => occurrences
            .iter()
            .max_by_key(|o| (o.occurrences, std::cmp::Reverse(o.var)))
            .map(|o| o.var),
        VariableHeuristic::MinMax => select_min(&occurrences, |o| minmax_estimate(o, set_size)),
        VariableHeuristic::MinLog => select_min(&occurrences, |o| {
            let domain = table.domain_size(o.var).unwrap_or(usize::MAX);
            minlog_estimate(o, set_size, domain)
        }),
    }
}

fn select_min<F>(occurrences: &[VariableOccurrence], mut score: F) -> Option<VarId>
where
    F: FnMut(&VariableOccurrence) -> f64,
{
    let mut best: Option<(f64, VarId)> = None;
    for o in occurrences {
        let s = score(o);
        let better = match best {
            None => true,
            // Strict improvement wins; ties keep the earlier (smaller) VarId.
            Some((current, _)) => s < current,
        };
        if better {
            best = Some((s, o.var));
        }
    }
    best.map(|(_, var)| var)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uprob_wsd::{WorldTable, WsDescriptor};

    fn two_var_table() -> (WorldTable, VarId, VarId) {
        let mut w = WorldTable::new();
        let x = w.add_uniform("x", 2).unwrap();
        let y = w.add_uniform("y", 2).unwrap();
        (w, x, y)
    }

    /// Builds the scenario of Remark 4.6: `n` descriptors; variable `x`
    /// occurs with the same assignment in `n − 1` of them, variable `y`
    /// occurs twice with different assignments (and has a third, unused
    /// alternative, so eliminating it would also translate `T` once).
    fn remark_4_6(n: usize) -> (WorldTable, WsSet, VarId, VarId) {
        let mut w = WorldTable::new();
        let x = w.add_uniform("x", 2).unwrap();
        let y = w.add_uniform("y", 3).unwrap();
        let mut descriptors = Vec::new();
        // n - 2 descriptors with x -> 0 only.
        for _ in 0..n - 2 {
            descriptors.push(WsDescriptor::from_pairs(&w, &[(x, 0)]).unwrap());
        }
        // One descriptor with x -> 0 and y -> 0, one with y -> 1 only.
        descriptors.push(WsDescriptor::from_pairs(&w, &[(x, 0), (y, 0)]).unwrap());
        descriptors.push(WsDescriptor::from_pairs(&w, &[(y, 1)]).unwrap());
        (w, WsSet::from_descriptors(descriptors), x, y)
    }

    #[test]
    fn occurrence_statistics_are_counted_per_value() {
        let (w, x, y) = two_var_table();
        let set = WsSet::from_descriptors(vec![
            WsDescriptor::from_pairs(&w, &[(x, 0)]).unwrap(),
            WsDescriptor::from_pairs(&w, &[(x, 0), (y, 1)]).unwrap(),
            WsDescriptor::from_pairs(&w, &[(y, 0)]).unwrap(),
        ]);
        let occ = collect_occurrences(&set);
        assert_eq!(occ.len(), 2);
        assert_eq!(occ[0].var, x);
        assert_eq!(occ[0].occurrences, 2);
        assert_eq!(occ[0].value_counts[&ValueIndex(0)], 2);
        assert_eq!(occ[1].var, y);
        assert_eq!(occ[1].occurrences, 2);
        assert_eq!(occ[1].tail_size(set.len()), 1);
    }

    #[test]
    fn remark_4_6_minmax_and_minlog_disagree() {
        // minmax prefers y (estimate n − 1 < n), while minlog prefers x
        // because eliminating y would duplicate almost the whole set into
        // both branches.
        let n = 10;
        let (w, set, x, y) = remark_4_6(n);
        assert_eq!(
            choose_variable(&set, &w, VariableHeuristic::MinMax),
            Some(y)
        );
        assert_eq!(
            choose_variable(&set, &w, VariableHeuristic::MinLog),
            Some(x)
        );
    }

    #[test]
    fn minlog_estimate_matches_closed_form_on_small_inputs() {
        let (w, x, y) = two_var_table();
        let set = WsSet::from_descriptors(vec![
            WsDescriptor::from_pairs(&w, &[(x, 0)]).unwrap(),
            WsDescriptor::from_pairs(&w, &[(x, 1), (y, 0)]).unwrap(),
            WsDescriptor::from_pairs(&w, &[(y, 1)]).unwrap(),
        ]);
        let occ = collect_occurrences(&set);
        let x_occ = &occ[0];
        // For x: T = 1, s_0 = 2, s_1 = 2, no missing assignment.
        // Figure 6 starts its running estimate at e = 0, so the incremental
        // log-sum computes log2(2^0 + 2^2 + 2^2) = log2(9).
        let estimate = minlog_estimate(x_occ, set.len(), 2);
        assert!((estimate - 9.0f64.log2()).abs() < 1e-9);
        // minmax for x: max(2, 2) = 2.
        assert!((minmax_estimate(x_occ, set.len()) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn minlog_accounts_for_missing_assignments() {
        let (w, x, _) = two_var_table();
        let set = WsSet::from_descriptors(vec![
            WsDescriptor::from_pairs(&w, &[(x, 0)]).unwrap(),
            WsDescriptor::empty(),
        ]);
        let occ = collect_occurrences(&set);
        // x occurs only with value 0; value 1 is missing, so T (size 1) is
        // translated once: estimate = log2(2^1 + 2^2) ≈ 2.585.
        let estimate = minlog_estimate(&occ[0], set.len(), 2);
        assert!((estimate - (2.0f64 + 4.0).log2()).abs() < 1e-9);
    }

    #[test]
    fn baseline_heuristics() {
        let (w, x, y) = two_var_table();
        let set = WsSet::from_descriptors(vec![
            WsDescriptor::from_pairs(&w, &[(y, 0)]).unwrap(),
            WsDescriptor::from_pairs(&w, &[(y, 1)]).unwrap(),
            WsDescriptor::from_pairs(&w, &[(x, 0), (y, 0)]).unwrap(),
        ]);
        assert_eq!(
            choose_variable(&set, &w, VariableHeuristic::FirstVariable),
            Some(x)
        );
        assert_eq!(
            choose_variable(&set, &w, VariableHeuristic::MostFrequent),
            Some(y)
        );
    }

    #[test]
    fn empty_and_universal_sets_have_no_variable() {
        let (w, _, _) = two_var_table();
        assert_eq!(
            choose_variable(&WsSet::empty(), &w, VariableHeuristic::MinLog),
            None
        );
        assert_eq!(
            choose_variable(&WsSet::universal(), &w, VariableHeuristic::MinLog),
            None
        );
    }

    #[test]
    fn heuristic_names_are_stable() {
        assert_eq!(VariableHeuristic::MinLog.name(), "minlog");
        assert_eq!(VariableHeuristic::MinMax.name(), "minmax");
        assert_eq!(VariableHeuristic::ALL.len(), 4);
        assert_eq!(VariableHeuristic::default(), VariableHeuristic::MinLog);
    }
}
