//! Conditioning a probabilistic database (Section 5, Figure 8).
//!
//! `assert[B]` removes all possible worlds in which the condition `B` does
//! not hold and renormalises the remaining worlds so their probabilities sum
//! to one, *without* enumerating worlds: the algorithm folds over the same
//! Davis–Putnam-style decomposition as confidence computation and, while
//! returning from the recursion, introduces fresh re-weighted variables for
//! every eliminated variable and rewrites the ws-descriptors of the
//! U-relations accordingly.
//!
//! Two variants are provided:
//!
//! * [`ConditioningMethod::Exact`] (default): the decomposition uses
//!   variable elimination only. The produced database represents exactly
//!   the Bayesian posterior (tested against brute-force enumeration).
//! * [`ConditioningMethod::PaperFig8`]: the verbatim algorithm of Figure 8,
//!   including its ⊗-node rule (each independent part of the condition is
//!   conditioned separately against the full U-relation and the results are
//!   unioned). This reproduces the paper's worked Examples 5.1/5.2/5.4 and
//!   its performance profile. Note that when the condition decomposes into
//!   several independent parts *and* tuples depend on more than one part,
//!   the ⊗ rule does not preserve tuple marginals (the disjunction of
//!   independent conditions induces correlations that re-weighting
//!   variables per part cannot express); see DESIGN.md, section "The
//!   ⊗-rule marginals caveat", for the analysis. For conditions that do
//!   not trigger the ⊗ rule the two variants coincide.
//!
//! Conditioning deliberately bypasses the shared decomposition cache of
//! [`crate::cache`]: its recursion rewrites U-relation descriptors and
//! allocates fresh variables, so its sub-results are not pure functions
//! of the sub-ws-set (DESIGN.md, "What is not cached").

use std::collections::BTreeMap;

use uprob_wsd::FxHashMap;

use uprob_urel::{ProbDb, URelation};
use uprob_wsd::{DomainValue, NeumaierSum, ValueIndex, VarId, WorldTable, WsDescriptor, WsSet};

use crate::decompose::eliminate_variable;
use crate::error::CoreError;
use crate::heuristics::{choose_variable, VariableHeuristic};
use crate::stats::DecompositionStats;
use crate::Result;

/// Which conditioning algorithm to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ConditioningMethod {
    /// Variable-elimination-only conditioning; exact posterior semantics.
    #[default]
    Exact,
    /// The verbatim algorithm of Figure 8 (independent partitioning + the
    /// ⊗-node rule).
    PaperFig8,
}

/// Options controlling [`condition`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConditioningOptions {
    /// Algorithm variant.
    pub method: ConditioningMethod,
    /// Variable-ordering heuristic used when eliminating variables.
    pub heuristic: VariableHeuristic,
    /// Apply the three simplification optimisations of Section 5
    /// (merge equivalent fresh variables, drop single-alternative variables,
    /// drop variables unused by the U-relations).
    pub simplify: bool,
    /// Optional budget on the number of decomposition nodes.
    pub node_budget: Option<u64>,
}

impl Default for ConditioningOptions {
    fn default() -> Self {
        ConditioningOptions {
            method: ConditioningMethod::Exact,
            heuristic: VariableHeuristic::MinLog,
            simplify: true,
            node_budget: None,
        }
    }
}

impl ConditioningOptions {
    /// The verbatim Figure 8 configuration (used to reproduce the paper's
    /// worked examples and benchmarks).
    pub fn paper_fig8() -> Self {
        ConditioningOptions {
            method: ConditioningMethod::PaperFig8,
            ..Default::default()
        }
    }
}

/// The result of conditioning a database.
#[derive(Clone, Debug)]
pub struct Conditioned {
    /// The conditioned (posterior) database.
    pub db: ProbDb,
    /// The confidence of the condition in the *input* database; in the
    /// output database the condition holds with probability 1.
    pub confidence: f64,
    /// Decomposition counters.
    pub stats: DecompositionStats,
    /// Number of fresh variables introduced (before simplification).
    pub new_variables: usize,
    /// Prior variables eliminated by the conditioning recursion (sorted,
    /// deduplicated, in prior [`VarId`]s). Any ws-set mentioning one of
    /// these changed meaning under the posterior measure; cached entries
    /// over them must be dropped.
    pub touched_variables: Vec<VarId>,
    /// Prior → posterior [`VarId`] remap for the *untouched* prior
    /// variables that survive in the posterior world table. Simplification
    /// renumbers variables ([`WorldTable::retain_variables`] assigns dense
    /// ids in registration order), but copies each surviving variable's
    /// name, domain and distribution verbatim and preserves relative id
    /// order — exactly the properties that make cross-snapshot cache
    /// inheritance bit-sound (see `uprob-core::cache::inherit`). Touched
    /// variables are never included, even when they physically survive.
    pub prior_remap: FxHashMap<VarId, VarId>,
}

/// Row identity used while threading U-relation descriptors through the
/// recursion: `(relation index, row index)`.
type RowId = (usize, usize);

/// A set of descriptors tagged with the row they belong to. A row can give
/// rise to several descriptors in the output (one per surviving branch).
type TaggedSet = Vec<(RowId, WsDescriptor)>;

struct Conditioner<'a> {
    table: &'a WorldTable,
    options: ConditioningOptions,
    /// The output world table: the input table plus the fresh variables.
    new_table: WorldTable,
    /// For every fresh variable: the variable it was derived from.
    sources: Vec<(VarId, VarId)>,
    stats: DecompositionStats,
    nodes: u64,
}

impl<'a> Conditioner<'a> {
    fn new(table: &'a WorldTable, options: ConditioningOptions) -> Self {
        Conditioner {
            table,
            options,
            new_table: table.clone(),
            sources: Vec::new(),
            stats: DecompositionStats::default(),
            nodes: 0,
        }
    }

    fn charge_node(&mut self) -> Result<()> {
        self.nodes += 1;
        if let Some(budget) = self.options.node_budget {
            if self.nodes > budget {
                return Err(CoreError::BudgetExceeded { budget });
            }
        }
        Ok(())
    }

    /// The recursive `cond` function of Figure 8, operating on the ws-set of
    /// the condition (decomposed on the fly) and the tagged descriptors of
    /// the U-relations.
    fn cond(&mut self, set: &WsSet, u: TaggedSet, depth: u64) -> Result<(f64, TaggedSet)> {
        self.charge_node()?;
        self.stats.max_depth = self.stats.max_depth.max(depth);
        if set.is_empty() {
            self.stats.bottoms += 1;
            return Ok((0.0, Vec::new()));
        }
        if set.contains_universal() {
            self.stats.leaves += 1;
            return Ok((1.0, u));
        }
        if self.options.method == ConditioningMethod::PaperFig8 {
            let parts = set.independent_partition();
            if parts.len() > 1 {
                self.stats.independent_nodes += 1;
                // Figure 8, ⊗ case: every part is conditioned against the
                // full U and the rewritten descriptor sets are unioned.
                let mut complement = 1.0;
                let mut merged: TaggedSet = Vec::new();
                for part in &parts {
                    let (ci, ui) = self.cond(part, u.clone(), depth + 1)?;
                    complement *= 1.0 - ci;
                    merged.extend(ui);
                }
                return Ok((1.0 - complement, merged));
            }
        }
        let var = choose_variable(set, self.table, self.options.heuristic)
            // uprob-lint: allow(panic-expect) -- the empty and universal cases return earlier in this function
            .expect("a non-empty, non-universal ws-set mentions at least one variable");
        self.stats.choice_nodes += 1;
        self.stats.variable_eliminations += 1;
        self.eliminate(set, var, u, depth)
    }

    /// Figure 8, ⊕ case: eliminate `var`, recurse into every alternative,
    /// renormalise the branch weights with a fresh variable and rewrite the
    /// descriptors of the surviving branches.
    fn eliminate(
        &mut self,
        set: &WsSet,
        var: VarId,
        u: TaggedSet,
        depth: u64,
    ) -> Result<(f64, TaggedSet)> {
        let (branches, missing_values, tail) = eliminate_variable(set, var, self.table);
        self.stats.branches += branches.len() as u64;
        let domain_size = self.table.domain_size(var)?;
        // Child condition per domain value (None = impossible branch).
        let mut child_sets: Vec<Option<&WsSet>> = vec![None; domain_size];
        for (value, child) in &branches {
            // uprob-lint: allow(panic-index) -- child_sets has domain_size slots; values index the same domain
            child_sets[value.index()] = Some(child);
        }
        let tail_if_nonempty = if tail.is_empty() { None } else { Some(&tail) };
        for value in &missing_values {
            // uprob-lint: allow(panic-index) -- same domain bound as above
            child_sets[value.index()] = tail_if_nonempty;
        }

        struct Branch {
            value: ValueIndex,
            weight: f64,
            confidence: f64,
            rewritten: TaggedSet,
        }
        let mut results: Vec<Branch> = Vec::new();
        let mut total = NeumaierSum::new();
        for (index, slot) in child_sets.iter().enumerate() {
            let value = ValueIndex(index as u16);
            let weight = self.table.probability(var, value)?;
            let Some(child_set) = *slot else {
                continue;
            };
            // U_i: the descriptors consistent with `var -> value`, extended
            // with that assignment.
            let u_i: TaggedSet = u
                .iter()
                .filter_map(|(row, d)| d.with(var, value).ok().map(|extended| (*row, extended)))
                .collect();
            let child_set = child_set.clone();
            let (ci, rewritten) = self.cond(&child_set, u_i, depth + 1)?;
            if ci > 0.0 && weight > 0.0 {
                total.add(weight * ci);
                results.push(Branch {
                    value,
                    weight,
                    confidence: ci,
                    rewritten,
                });
            }
        }
        let total = total.value();
        if total <= 0.0 {
            return Ok((0.0, Vec::new()));
        }
        // Fresh variable var' whose alternatives are the surviving values of
        // `var`, re-weighted so that they sum to one within this node.
        let source_info = self.table.variable(var)?;
        let fresh_name = self.new_table.fresh_name(&source_info.name);
        let alternatives: Vec<(DomainValue, f64)> = results
            .iter()
            .map(|b| {
                // uprob-lint: allow(panic-index) -- surviving branch values come from this variable's domain
                let label = source_info.values[b.value.index()];
                (label, b.weight * b.confidence / total)
            })
            .collect();
        let fresh = self
            .new_table
            .add_variable(&fresh_name, &alternatives)
            .map_err(CoreError::Wsd)?;
        self.sources.push((fresh, var));
        // Rewrite: replace `var -> old value` by `var' -> new index`.
        let mut merged: TaggedSet = Vec::new();
        for (new_index, branch) in results.into_iter().enumerate() {
            for (row, mut descriptor) in branch.rewritten {
                descriptor.remove(var);
                descriptor
                    .assign(fresh, ValueIndex(new_index as u16))
                    // uprob-lint: allow(panic-expect) -- `fresh` was just created; no input descriptor mentions it
                    .expect("fresh variable cannot already occur in the descriptor");
                merged.push((row, descriptor));
            }
        }
        Ok((total, merged))
    }
}

/// Conditions `db` on the world-set described by `condition` (the ws-set of
/// the worlds that satisfy the asserted Boolean query).
///
/// Returns the posterior database, the confidence of the condition in the
/// input database and decomposition statistics.
///
/// # Errors
///
/// * [`CoreError::EmptyCondition`] if the condition denotes an empty or
///   zero-probability world-set (the posterior is undefined);
/// * [`CoreError::BudgetExceeded`] if a node budget is configured and
///   exhausted.
pub fn condition(
    db: &ProbDb,
    condition: &WsSet,
    options: &ConditioningOptions,
) -> Result<Conditioned> {
    let table = db.world_table();
    let mut conditioner = Conditioner::new(table, *options);

    // Collect the descriptors of every row of every relation, tagged with
    // their origin.
    let relation_names = db.relation_names();
    let mut tagged: TaggedSet = Vec::new();
    let mut tuples: Vec<Vec<uprob_urel::Tuple>> = Vec::with_capacity(relation_names.len());
    for (rel_index, name) in relation_names.iter().enumerate() {
        let relation = db.relation(name)?;
        let mut rel_tuples = Vec::with_capacity(relation.len());
        for (row_index, (tuple, descriptor)) in relation.iter().enumerate() {
            tagged.push(((rel_index, row_index), descriptor.clone()));
            rel_tuples.push(tuple.clone());
        }
        tuples.push(rel_tuples);
    }

    let (confidence, rewritten) = conditioner.cond(condition, tagged, 1)?;
    // A NaN confidence is treated like zero: a degenerate condition must
    // surface as the typed error, never as a NaN/Inf posterior.
    if confidence <= 0.0 || confidence.is_nan() {
        return Err(CoreError::EmptyCondition);
    }
    let new_variables = conditioner.sources.len();

    // Group the rewritten descriptors by row.
    let mut per_row: FxHashMap<RowId, Vec<WsDescriptor>> = FxHashMap::default();
    for (row, descriptor) in rewritten {
        per_row.entry(row).or_default().push(descriptor);
    }

    // Rebuild the database over the extended world table.
    let mut out = ProbDb::with_world_table(conditioner.new_table);
    for (rel_index, name) in relation_names.iter().enumerate() {
        let schema = db.relation(name)?.schema().clone();
        let mut relation = URelation::new(schema);
        // uprob-lint: allow(panic-index) -- rel_index enumerates relation_names, which built `tuples` in the same order
        for (row_index, tuple) in tuples[rel_index].iter().enumerate() {
            if let Some(descriptors) = per_row.get(&(rel_index, row_index)) {
                for descriptor in descriptors {
                    relation.push(tuple.clone(), descriptor.clone());
                }
            }
        }
        out.replace_relation(relation);
    }

    let mut touched_variables: Vec<VarId> = conditioner
        .sources
        .iter()
        .map(|&(_, source)| source)
        .collect();
    touched_variables.sort();
    touched_variables.dedup();

    let mapping: FxHashMap<VarId, VarId> = if options.simplify {
        simplify_with_mapping(&mut out, &conditioner.sources)
    } else {
        // Without simplification the posterior table is the prior table
        // plus appended fresh variables: every id maps to itself.
        out.world_table().variable_ids().map(|v| (v, v)).collect()
    };
    let prior_vars = table.num_variables() as u32;
    let prior_remap: FxHashMap<VarId, VarId> = mapping
        .into_iter()
        .filter(|(old, _)| old.0 < prior_vars && touched_variables.binary_search(old).is_err())
        .collect();

    Ok(Conditioned {
        db: out,
        confidence,
        stats: conditioner.stats,
        new_variables,
        touched_variables,
        prior_remap,
    })
}

/// The intersection of several condition ws-sets (Section 3.2), normalised
/// between folds: the world-set of the *conjunction*. The empty slice
/// yields the universal set (the empty conjunction is true everywhere);
/// a one-element slice yields a normalised copy of that set.
pub fn intersect_conditions(conditions: &[WsSet]) -> WsSet {
    let mut iter = conditions.iter();
    let Some(first) = iter.next() else {
        return WsSet::universal();
    };
    let mut combined = first.normalized();
    for set in iter {
        combined = combined.intersect(set);
        combined.normalize();
    }
    combined
}

/// Conditions `db` on the **conjunction** of several conditions in a
/// single pass: the condition ws-sets are intersected once
/// ([`intersect_conditions`]) and the decomposition/renormalisation of
/// [`condition`] runs exactly once over the combined set — instead of
/// materialising an intermediate posterior database per condition, which
/// re-translates every U-relation and re-runs the fresh-variable
/// re-weighting at each step. Asserts compose (Theorem 5.5), so the
/// result represents the same posterior as the sequential fold.
///
/// # Errors
///
/// Same as [`condition`]; in particular [`CoreError::EmptyCondition`] when
/// the conjunction is empty or has probability zero (mutually
/// contradictory conditions).
pub fn condition_all(
    db: &ProbDb,
    conditions: &[WsSet],
    options: &ConditioningOptions,
) -> Result<Conditioned> {
    condition(db, &intersect_conditions(conditions), options)
}

/// The three simplification optimisations of Section 5:
///
/// 1. variables that do not appear in any U-relation are dropped from `W`;
/// 2. variables with a single domain alternative are dropped everywhere;
/// 3. fresh variables derived from the same original variable with identical
///    alternatives and weights are merged.
pub fn simplify(db: &mut ProbDb, sources: &[(VarId, VarId)]) {
    let _ = simplify_with_mapping(db, sources);
}

/// [`simplify`], additionally returning the old → new [`VarId`] mapping of
/// the variables that survive optimisation (1). Variables dropped as unused
/// are absent from the map; delta consumers treat absence as "do not
/// inherit anything mentioning this variable".
pub fn simplify_with_mapping(
    db: &mut ProbDb,
    sources: &[(VarId, VarId)],
) -> FxHashMap<VarId, VarId> {
    merge_equivalent_variables(db, sources);
    drop_singleton_assignments(db);
    drop_unused_variables(db)
}

/// Optimisation (3): merge fresh variables with the same source, the same
/// alternatives and the same weights.
fn merge_equivalent_variables(db: &mut ProbDb, sources: &[(VarId, VarId)]) {
    const EPSILON: f64 = 1e-12;
    let table = db.world_table().clone();
    // BTreeMap, not a hash map: the rename loop below iterates this map
    // per descriptor, and renames must apply in a reproducible order.
    let mut canonical: BTreeMap<VarId, VarId> = BTreeMap::new();
    let mut representatives: Vec<(VarId, VarId)> = Vec::new(); // (source, representative)
    for &(fresh, source) in sources {
        let Ok(info) = table.variable(fresh) else {
            continue;
        };
        let mut merged = false;
        for &(other_source, representative) in &representatives {
            if other_source != source {
                continue;
            }
            let rep_info = table
                .variable(representative)
                // uprob-lint: allow(panic-expect) -- representatives were looked up in this table when recorded
                .expect("representative variable exists");
            let same = rep_info.values == info.values
                && rep_info.probabilities.len() == info.probabilities.len()
                && rep_info
                    .probabilities
                    .iter()
                    .zip(&info.probabilities)
                    .all(|(a, b)| (a - b).abs() < EPSILON);
            if same {
                canonical.insert(fresh, representative);
                merged = true;
                break;
            }
        }
        if !merged {
            representatives.push((source, fresh));
        }
    }
    if canonical.is_empty() {
        return;
    }
    for relation in db.relations_mut() {
        for (_, descriptor) in relation.rows_mut() {
            for (from, to) in &canonical {
                descriptor.rename_variable(*from, *to);
            }
        }
    }
}

/// Optimisation (2): assignments of variables with a single alternative
/// (probability 1) are removed from every descriptor.
fn drop_singleton_assignments(db: &mut ProbDb) {
    let singletons: Vec<VarId> = db
        .world_table()
        .iter()
        .filter(|(_, info)| info.domain_size() == 1)
        .map(|(var, _)| var)
        .collect();
    if singletons.is_empty() {
        return;
    }
    for relation in db.relations_mut() {
        for (_, descriptor) in relation.rows_mut() {
            for var in &singletons {
                descriptor.remove(*var);
            }
        }
    }
}

/// Optimisation (1): rebuild the world table with only the variables that
/// still occur in some U-relation, remapping the descriptors. Returns the
/// old → new mapping of the kept variables.
fn drop_unused_variables(db: &mut ProbDb) -> FxHashMap<VarId, VarId> {
    let mut used: std::collections::BTreeSet<VarId> = std::collections::BTreeSet::new();
    for relation in db.relations() {
        for (_, descriptor) in relation.iter() {
            used.extend(descriptor.variables());
        }
    }
    let (new_table, mapping) = db
        .world_table()
        .retain_variables(|var, _| used.contains(&var));
    // Remap every descriptor to the new variable ids.
    for relation in db.relations_mut() {
        for (_, descriptor) in relation.rows_mut() {
            let remapped: Vec<(VarId, ValueIndex)> = descriptor
                .iter()
                // uprob-lint: allow(panic-index) -- mapping covers every variable `used` kept, and descriptors only mention kept variables
                .map(|a| (mapping[&a.var], a.value))
                .collect();
            let mut rebuilt = WsDescriptor::empty();
            for (var, value) in remapped {
                rebuilt
                    .assign(var, value)
                    // uprob-lint: allow(panic-expect) -- injective id remap of an already-functional descriptor
                    .expect("remapping preserves functionality");
            }
            *descriptor = rebuilt;
        }
    }
    db.set_world_table(new_table);
    mapping
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use uprob_urel::{ColumnType, Schema, Tuple, Value};

    /// The SSN database of Figures 1/2 plus the FD world-set of Example 5.1.
    fn ssn_db_and_condition() -> (ProbDb, WsSet) {
        let mut db = ProbDb::new();
        let j = db
            .world_table_mut()
            .add_variable("j", &[(1, 0.2), (7, 0.8)])
            .unwrap();
        let b = db
            .world_table_mut()
            .add_variable("b", &[(4, 0.3), (7, 0.7)])
            .unwrap();
        let schema = Schema::new("R", &[("SSN", ColumnType::Int), ("NAME", ColumnType::Str)]);
        let mut r = db.create_relation(schema).unwrap();
        {
            let w = db.world_table();
            r.push(
                Tuple::new(vec![Value::Int(1), Value::str("John")]),
                WsDescriptor::from_pairs(w, &[(j, 1)]).unwrap(),
            );
            r.push(
                Tuple::new(vec![Value::Int(7), Value::str("John")]),
                WsDescriptor::from_pairs(w, &[(j, 7)]).unwrap(),
            );
            r.push(
                Tuple::new(vec![Value::Int(4), Value::str("Bill")]),
                WsDescriptor::from_pairs(w, &[(b, 4)]).unwrap(),
            );
            r.push(
                Tuple::new(vec![Value::Int(7), Value::str("Bill")]),
                WsDescriptor::from_pairs(w, &[(b, 7)]).unwrap(),
            );
        }
        db.insert_relation(r).unwrap();
        let condition = WsSet::from_descriptors(vec![
            WsDescriptor::from_pairs(db.world_table(), &[(j, 1)]).unwrap(),
            WsDescriptor::from_pairs(db.world_table(), &[(j, 7), (b, 4)]).unwrap(),
        ]);
        (db, condition)
    }

    /// Probability that `tuple` appears in relation `name` of `db`, by
    /// brute-force world enumeration.
    fn tuple_marginal(db: &ProbDb, name: &str, tuple: &Tuple) -> f64 {
        db.enumerate_instances()
            .filter(|(_, _, instance)| instance[name].contains(tuple))
            .map(|(_, p, _)| p)
            .sum()
    }

    /// The distribution over deterministic instances of `db`, keyed by the
    /// printed form of the instance (stable and hashable).
    fn instance_distribution(db: &ProbDb) -> BTreeMap<String, f64> {
        let mut out: BTreeMap<String, f64> = BTreeMap::new();
        for (_, p, instance) in db.enumerate_instances() {
            let key = format!("{instance:?}");
            *out.entry(key).or_insert(0.0) += p;
        }
        out.retain(|_, p| *p > 1e-15);
        out
    }

    #[test]
    fn example_5_1_conditioning_on_the_functional_dependency() {
        let (db, condition) = ssn_db_and_condition();
        let result = condition_db_default(&db, &condition);
        assert!((result.confidence - 0.44).abs() < 1e-12);

        let conditioned = &result.db;
        // The posterior of Bill having SSN 4 is .3/.44 ≈ .68 (Introduction).
        let bill4 = Tuple::new(vec![Value::Int(4), Value::str("Bill")]);
        let p = tuple_marginal(conditioned, "R", &bill4);
        assert!((p - 0.3 / 0.44).abs() < 1e-9, "P(Bill has SSN 4) = {p}");
        // The other tuple marginals of Example 5.1.
        let john1 = Tuple::new(vec![Value::Int(1), Value::str("John")]);
        assert!((tuple_marginal(conditioned, "R", &john1) - 0.2 / 0.44).abs() < 1e-9);
        let john7 = Tuple::new(vec![Value::Int(7), Value::str("John")]);
        assert!((tuple_marginal(conditioned, "R", &john7) - 0.24 / 0.44).abs() < 1e-9);
        let bill7 = Tuple::new(vec![Value::Int(7), Value::str("Bill")]);
        assert!((tuple_marginal(conditioned, "R", &bill7) - 0.14 / 0.44).abs() < 1e-9);
        // The world weights sum to one.
        let total: f64 = conditioned
            .world_table()
            .enumerate_worlds()
            .map(|(_, p)| p)
            .sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    fn condition_db_default(db: &ProbDb, ws: &WsSet) -> Conditioned {
        condition(db, ws, &ConditioningOptions::default()).unwrap()
    }

    #[test]
    fn example_5_1_fig8_variant_produces_the_paper_database() {
        let (db, cond_set) = ssn_db_and_condition();
        let result = condition(&db, &cond_set, &ConditioningOptions::paper_fig8()).unwrap();
        assert!((result.confidence - 0.44).abs() < 1e-12);
        let table = result.db.world_table();
        // After simplification the world table holds b (unchanged) and a
        // fresh j' with weights .2/.44 and .8*.3/.44 (Example 5.1).
        assert_eq!(table.num_variables(), 2);
        let b = table.variable_by_name("b").unwrap();
        let jp = table.variable_by_name("j'").unwrap();
        assert!((table.probability(b, ValueIndex(0)).unwrap() - 0.3).abs() < 1e-12);
        assert!((table.probability(jp, ValueIndex(0)).unwrap() - 0.2 / 0.44).abs() < 1e-12);
        assert!((table.probability(jp, ValueIndex(1)).unwrap() - 0.24 / 0.44).abs() < 1e-12);
        // The relation has five rows, as in the paper: Bill/4 appears both
        // under j' -> 1 (with b -> 4) and under j' -> 7.
        assert_eq!(result.db.relation("R").unwrap().len(), 5);
    }

    #[test]
    fn exact_and_fig8_agree_when_no_independent_partitioning_occurs() {
        let (db, cond_set) = ssn_db_and_condition();
        let exact = condition(&db, &cond_set, &ConditioningOptions::default()).unwrap();
        let fig8 = condition(&db, &cond_set, &ConditioningOptions::paper_fig8()).unwrap();
        assert!((exact.confidence - fig8.confidence).abs() < 1e-12);
        assert_eq!(
            instance_distribution(&exact.db)
                .keys()
                .collect::<Vec<_>>()
                .len(),
            instance_distribution(&fig8.db)
                .keys()
                .collect::<Vec<_>>()
                .len()
        );
    }

    #[test]
    fn exact_conditioning_matches_bayes_posterior_at_instance_level() {
        // A condition with two independent parts and tuples spanning both
        // parts: the case where the ⊗ rule of Figure 8 loses precision but
        // the exact variant must not.
        let mut db = ProbDb::new();
        let x = db.world_table_mut().add_boolean("x", 0.5).unwrap();
        let y = db.world_table_mut().add_boolean("y", 0.5).unwrap();
        let schema = Schema::new("S", &[("ID", ColumnType::Int)]);
        let mut rel = db.create_relation(schema).unwrap();
        {
            let w = db.world_table();
            rel.push(
                Tuple::new(vec![Value::Int(1)]),
                WsDescriptor::from_pairs(w, &[(x, 1)]).unwrap(),
            );
            rel.push(
                Tuple::new(vec![Value::Int(2)]),
                WsDescriptor::from_pairs(w, &[(y, 1)]).unwrap(),
            );
            rel.push(Tuple::new(vec![Value::Int(3)]), WsDescriptor::empty());
        }
        db.insert_relation(rel).unwrap();
        // Condition: x = 1 OR y = 1.
        let cond_set = WsSet::from_descriptors(vec![
            WsDescriptor::from_pairs(db.world_table(), &[(x, 1)]).unwrap(),
            WsDescriptor::from_pairs(db.world_table(), &[(y, 1)]).unwrap(),
        ]);

        let result = condition(&db, &cond_set, &ConditioningOptions::default()).unwrap();
        assert!((result.confidence - 0.75).abs() < 1e-12);

        // Expected posterior over instances by direct Bayes on the prior.
        let prior = instance_distribution(&db);
        let mut expected: BTreeMap<String, f64> = BTreeMap::new();
        for (world, p) in db.world_table().enumerate_worlds() {
            if !cond_set.matches_world(&world) {
                continue;
            }
            let key = format!("{:?}", db.instantiate_world(&world));
            *expected.entry(key).or_insert(0.0) += p / 0.75;
        }
        let got = instance_distribution(&result.db);
        assert_eq!(expected.len(), got.len(), "prior: {prior:?}");
        for (key, p) in &expected {
            let q = got.get(key).copied().unwrap_or(0.0);
            assert!(
                (p - q).abs() < 1e-9,
                "instance {key}: expected {p}, got {q}"
            );
        }
        // Tuple marginals follow as well.
        let t1 = Tuple::new(vec![Value::Int(1)]);
        assert!((tuple_marginal(&result.db, "S", &t1) - 0.5 / 0.75).abs() < 1e-9);
        let t3 = Tuple::new(vec![Value::Int(3)]);
        assert!((tuple_marginal(&result.db, "S", &t3) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn conditioning_on_impossible_world_set_is_an_error() {
        let (db, _) = ssn_db_and_condition();
        let err = condition(&db, &WsSet::empty(), &ConditioningOptions::default()).unwrap_err();
        assert_eq!(err, CoreError::EmptyCondition);
    }

    #[test]
    fn conditioning_on_the_universal_set_is_the_identity() {
        let (db, _) = ssn_db_and_condition();
        let result = condition(&db, &WsSet::universal(), &ConditioningOptions::default()).unwrap();
        assert!((result.confidence - 1.0).abs() < 1e-12);
        let before = instance_distribution(&db);
        let after = instance_distribution(&result.db);
        assert_eq!(before.len(), after.len());
        for (key, p) in &before {
            assert!((p - after[key]).abs() < 1e-9);
        }
    }

    #[test]
    fn budget_is_enforced() {
        let (db, cond_set) = ssn_db_and_condition();
        let options = ConditioningOptions {
            node_budget: Some(1),
            ..Default::default()
        };
        assert!(matches!(
            condition(&db, &cond_set, &options),
            Err(CoreError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn budget_enforcement_is_uniform_across_we_exact_and_fig8() {
        // One hard instance, one budget: the WE confidence path, Exact
        // conditioning and the PaperFig8 ⊗-branches must all abort with the
        // budget-exhausted error rather than return a (possibly wrong)
        // answer. The instance is independence-rich (eight variable-disjoint
        // pairs): WE's difference expansion doubles per descriptor, Exact
        // (VE-only) conditioning re-translates the tail in every branch,
        // and Fig8 conditions every ⊗-part separately.
        let mut db = ProbDb::new();
        let mut descriptors = Vec::new();
        {
            let table = db.world_table_mut();
            for i in 0..8 {
                let x = table.add_boolean(&format!("x{i}"), 0.5).unwrap();
                let y = table.add_boolean(&format!("y{i}"), 0.5).unwrap();
                descriptors.push((x, y));
            }
        }
        let schema = Schema::new("T", &[("ID", ColumnType::Int)]);
        let mut rel = db.create_relation(schema).unwrap();
        {
            let w = db.world_table();
            for (i, &(x, _)) in descriptors.iter().enumerate() {
                rel.push(
                    Tuple::new(vec![Value::Int(i as i64)]),
                    WsDescriptor::from_pairs(w, &[(x, 1)]).unwrap(),
                );
            }
        }
        db.insert_relation(rel).unwrap();
        let cond_set: WsSet = descriptors
            .iter()
            .map(|&(x, y)| WsDescriptor::from_pairs(db.world_table(), &[(x, 1), (y, 1)]).unwrap())
            .collect();

        const BUDGET: u64 = 20;
        let we = crate::elimination::confidence_by_elimination_with(
            &cond_set,
            db.world_table(),
            Some(BUDGET),
            None,
        );
        assert_eq!(
            we.unwrap_err(),
            CoreError::BudgetExceeded { budget: BUDGET }
        );
        for options in [
            ConditioningOptions {
                node_budget: Some(BUDGET),
                ..Default::default()
            },
            ConditioningOptions {
                node_budget: Some(BUDGET),
                ..ConditioningOptions::paper_fig8()
            },
        ] {
            assert_eq!(
                condition(&db, &cond_set, &options).unwrap_err(),
                CoreError::BudgetExceeded { budget: BUDGET },
                "method {:?} must hit the budget",
                options.method
            );
        }
        // Sanity: without a budget every path agrees on the confidence.
        let exact_p = 1.0 - 0.75f64.powi(8);
        let we_full =
            crate::elimination::confidence_by_elimination(&cond_set, db.world_table()).unwrap();
        assert!((we_full.probability - exact_p).abs() < 1e-12);
        for options in [
            ConditioningOptions::default(),
            ConditioningOptions::paper_fig8(),
        ] {
            let result = condition(&db, &cond_set, &options).unwrap();
            assert!(
                (result.confidence - exact_p).abs() < 1e-12,
                "method {:?} confidence {}",
                options.method,
                result.confidence
            );
        }
    }

    #[test]
    fn simplification_removes_unused_and_singleton_variables() {
        let (db, cond_set) = ssn_db_and_condition();
        let raw = condition(
            &db,
            &cond_set,
            &ConditioningOptions {
                simplify: false,
                ..Default::default()
            },
        )
        .unwrap();
        let simplified = condition(&db, &cond_set, &ConditioningOptions::default()).unwrap();
        assert!(simplified.db.world_table().num_variables() < raw.db.world_table().num_variables());
        // Both represent the same posterior.
        let a = instance_distribution(&raw.db);
        let b = instance_distribution(&simplified.db);
        assert_eq!(a.len(), b.len());
        for (key, p) in &a {
            assert!((p - b[key]).abs() < 1e-9);
        }
        assert!(simplified.db.validate().is_ok());
    }

    #[test]
    fn repeated_conditioning_composes() {
        // assert[B1] then assert[B2] equals assert[B1 ∧ B2] (Theorem 5.5 in
        // spirit: asserts commute and compose).
        let mut db = ProbDb::new();
        let x = db.world_table_mut().add_uniform("x", 3).unwrap();
        let y = db.world_table_mut().add_uniform("y", 3).unwrap();
        let schema = Schema::new("T", &[("ID", ColumnType::Int)]);
        let mut rel = db.create_relation(schema).unwrap();
        {
            let w = db.world_table();
            rel.push(
                Tuple::new(vec![Value::Int(1)]),
                WsDescriptor::from_pairs(w, &[(x, 0)]).unwrap(),
            );
            rel.push(
                Tuple::new(vec![Value::Int(2)]),
                WsDescriptor::from_pairs(w, &[(x, 1), (y, 1)]).unwrap(),
            );
            rel.push(
                Tuple::new(vec![Value::Int(3)]),
                WsDescriptor::from_pairs(w, &[(y, 2)]).unwrap(),
            );
        }
        db.insert_relation(rel).unwrap();
        // B1: x != 2 (x -> 0 or x -> 1). B2: y != 0.
        let b1 = WsSet::from_descriptors(vec![
            WsDescriptor::from_pairs(db.world_table(), &[(x, 0)]).unwrap(),
            WsDescriptor::from_pairs(db.world_table(), &[(x, 1)]).unwrap(),
        ]);
        let opts = ConditioningOptions::default();
        let step1 = condition(&db, &b1, &opts).unwrap();
        // Express B2 over the *conditioned* database's world table.
        let table1 = step1.db.world_table();
        let y1 = table1.variable_by_name("y").unwrap();
        let b2_after = WsSet::from_descriptors(vec![
            WsDescriptor::from_pairs(table1, &[(y1, 1)]).unwrap(),
            WsDescriptor::from_pairs(table1, &[(y1, 2)]).unwrap(),
        ]);
        let step2 = condition(&step1.db, &b2_after, &opts).unwrap();

        // Direct computation of the posterior given B1 ∧ B2 on the prior.
        let mut expected: BTreeMap<String, f64> = BTreeMap::new();
        let mut mass = 0.0;
        for (world, p) in db.world_table().enumerate_worlds() {
            let x_ok = world[x.index()].index() != 2;
            let y_ok = world[y.index()].index() != 0;
            if x_ok && y_ok {
                mass += p;
                let key = format!("{:?}", db.instantiate_world(&world));
                *expected.entry(key).or_insert(0.0) += p;
            }
        }
        for p in expected.values_mut() {
            *p /= mass;
        }
        expected.retain(|_, p| *p > 1e-15);
        let got = instance_distribution(&step2.db);
        assert_eq!(expected.len(), got.len());
        for (key, p) in &expected {
            assert!((p - got[key]).abs() < 1e-9, "instance {key}");
        }
        // The combined confidence is the product of the step confidences.
        assert!((step1.confidence * step2.confidence - mass).abs() < 1e-9);

        // condition_all on [B1, B2] (both over the *prior* table) is the
        // single-pass equivalent: same confidence as the product, same
        // posterior instance distribution.
        let b2 = WsSet::from_descriptors(vec![
            WsDescriptor::from_pairs(db.world_table(), &[(y, 1)]).unwrap(),
            WsDescriptor::from_pairs(db.world_table(), &[(y, 2)]).unwrap(),
        ]);
        let joint = condition_all(&db, &[b1.clone(), b2.clone()], &opts).unwrap();
        assert!((joint.confidence - mass).abs() < 1e-12);
        let joint_got = instance_distribution(&joint.db);
        assert_eq!(expected.len(), joint_got.len());
        for (key, p) in &expected {
            assert!((p - joint_got[key]).abs() < 1e-9, "instance {key}");
        }
    }

    #[test]
    fn touched_and_remap_describe_the_posterior_table() {
        let (db, cond_set) = ssn_db_and_condition();
        let table = db.world_table();
        let j = table.variable_by_name("j").unwrap();
        let b = table.variable_by_name("b").unwrap();
        let result = condition(&db, &cond_set, &ConditioningOptions::default()).unwrap();
        // Both prior variables are eliminated by this condition (it mentions
        // j and b), so nothing survives into the remap…
        assert!(result.touched_variables.contains(&j));
        for old in result.prior_remap.keys() {
            assert!(!result.touched_variables.contains(old));
        }
        // …and every remapped variable is a verbatim copy in the posterior.
        for (&old, &new) in &result.prior_remap {
            let before = db.world_table().variable(old).unwrap();
            let after = result.db.world_table().variable(new).unwrap();
            assert_eq!(before, after);
        }

        // A condition touching only j leaves b untouched and remapped to a
        // live posterior id with identical distribution.
        let only_j =
            WsSet::from_descriptors(vec![
                WsDescriptor::from_pairs(db.world_table(), &[(j, 1)]).unwrap()
            ]);
        let result = condition(&db, &only_j, &ConditioningOptions::default()).unwrap();
        assert_eq!(result.touched_variables, vec![j]);
        let new_b = result.prior_remap[&b];
        let before = db.world_table().variable(b).unwrap();
        let after = result.db.world_table().variable(new_b).unwrap();
        assert_eq!(before.name, after.name);
        assert_eq!(before.values, after.values);
        assert!(before
            .probabilities
            .iter()
            .zip(&after.probabilities)
            .all(|(x, y)| x.to_bits() == y.to_bits()));

        // With simplify off, surviving prior variables map to themselves.
        let raw = condition(
            &db,
            &only_j,
            &ConditioningOptions {
                simplify: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(raw.prior_remap[&b], b);
        assert!(!raw.prior_remap.contains_key(&j));
    }

    #[test]
    fn intersect_conditions_edge_cases() {
        let (db, cond_set) = ssn_db_and_condition();
        // Empty slice: the universal set (the empty conjunction).
        assert!(intersect_conditions(&[]).contains_universal());
        // Singleton: a normalised copy.
        assert_eq!(
            intersect_conditions(std::slice::from_ref(&cond_set)),
            cond_set.normalized()
        );
        // Conjunction with the universal set is a no-op (modulo
        // normalisation).
        assert_eq!(
            intersect_conditions(&[WsSet::universal(), cond_set.clone()]),
            cond_set.normalized()
        );
        // Contradictory conditions intersect to the empty set, and
        // condition_all reports the typed error.
        let table = db.world_table();
        let j = table.variable_by_name("j").unwrap();
        let j1 = WsSet::from_descriptors(vec![WsDescriptor::from_pairs(table, &[(j, 1)]).unwrap()]);
        let j7 = WsSet::from_descriptors(vec![WsDescriptor::from_pairs(table, &[(j, 7)]).unwrap()]);
        assert!(intersect_conditions(&[j1.clone(), j7.clone()]).is_empty());
        assert_eq!(
            condition_all(&db, &[j1, j7], &ConditioningOptions::default()).unwrap_err(),
            CoreError::EmptyCondition
        );
        // condition_all on no conditions is the identity.
        let identity = condition_all(&db, &[], &ConditioningOptions::default()).unwrap();
        assert!((identity.confidence - 1.0).abs() < 1e-12);
    }
}
