//! The unified confidence engine: exact, approximate and hybrid strategies.
//!
//! The paper pairs the exact ws-tree decomposition (Sections 4–6) with
//! Karp–Luby sampling under the Dagum–Karp–Luby–Ross optimal stopping rule
//! (Section 7) for instances where exact computation is infeasible. This
//! module makes that pairing a first-class, explicit choice:
//!
//! * [`ConfidenceStrategy::Exact`] — the decomposition fold of
//!   [`crate::confidence`], with whatever budget the caller configured;
//! * [`ConfidenceStrategy::Approximate`] — Karp–Luby sampling with the
//!   optimal stopping rule, never touching the exact path;
//! * [`ConfidenceStrategy::Hybrid`] — run the (cached) exact decomposition
//!   under a node budget and, on [`crate::CoreError::BudgetExceeded`],
//!   transparently fall back to sampling.
//!
//! The **fallback contract**: on instances the exact path completes within
//! budget, `Hybrid` returns the exact path's bit-identical probability (no
//! spurious fallback, [`ResolvedPath::Exact`]); on instances it aborts,
//! `Hybrid` returns a sampled estimate with the requested (ε, δ) guarantee
//! and reports it as [`ResolvedPath::Sampled`] with `fell_back: true`.
//! Errors other than the exhausted budget are never masked by sampling.
//!
//! Conditioned confidence `P(Q | C) = P(Q ∧ C) / P(C)` is supported under
//! every strategy (exactly as a ratio of two decomposition folds, via
//! [`uprob_approx::conditioned`] when sampling), so constraint assertion and
//! batch tuple confidence work on instances where exact conditioning blows
//! up — see `uprob-query`.

use uprob_approx::{conditioned_monte_carlo, optimal_monte_carlo, ApproximationOptions};
use uprob_wsd::{WorldTable, WsSet};

use crate::cache::SharedDecompositionCache;
use crate::decompose::DecompositionOptions;
use crate::error::CoreError;
use crate::parallel::{confidence_parallel, ParallelOptions};
use crate::stats::DecompositionStats;
use crate::Result;

/// How a confidence value should be computed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ConfidenceStrategy {
    /// Exact decomposition only; an exhausted node budget is an error.
    Exact,
    /// Karp–Luby sampling with the Dagum et al. optimal stopping rule at
    /// the given (ε, δ); the exact path is never attempted.
    Approximate(ApproximationOptions),
    /// Exact decomposition under `budget` nodes, falling back to sampling
    /// at `approx`'s (ε, δ) when the budget is exhausted.
    Hybrid {
        /// Node budget for the exact attempt (the same unit as
        /// [`DecompositionOptions::node_budget`]).
        budget: u64,
        /// Parameters of the sampling fallback.
        approx: ApproximationOptions,
    },
}

impl ConfidenceStrategy {
    /// An approximate strategy with the given (ε, δ) and default seed.
    pub fn approximate(epsilon: f64, delta: f64) -> Self {
        ConfidenceStrategy::Approximate(
            ApproximationOptions::default()
                .with_epsilon(epsilon)
                .with_delta(delta),
        )
    }

    /// A hybrid strategy with the given exact-node budget and sampling
    /// (ε, δ), with the default seed.
    pub fn hybrid(budget: u64, epsilon: f64, delta: f64) -> Self {
        ConfidenceStrategy::Hybrid {
            budget,
            approx: ApproximationOptions::default()
                .with_epsilon(epsilon)
                .with_delta(delta),
        }
    }

    /// Short name used in reports and benchmark tables.
    pub fn name(&self) -> &'static str {
        match self {
            ConfidenceStrategy::Exact => "exact",
            ConfidenceStrategy::Approximate(_) => "approximate",
            ConfidenceStrategy::Hybrid { .. } => "hybrid",
        }
    }

    /// The sampling options, if this strategy can sample.
    pub fn approx_options(&self) -> Option<&ApproximationOptions> {
        match self {
            ConfidenceStrategy::Exact => None,
            ConfidenceStrategy::Approximate(a) => Some(a),
            ConfidenceStrategy::Hybrid { approx, .. } => Some(approx),
        }
    }

    /// Returns a copy with the sampling seed replaced (no-op for `Exact`).
    pub fn with_seed(self, seed: u64) -> Self {
        match self {
            ConfidenceStrategy::Exact => ConfidenceStrategy::Exact,
            ConfidenceStrategy::Approximate(a) => {
                ConfidenceStrategy::Approximate(a.with_seed(seed))
            }
            ConfidenceStrategy::Hybrid { budget, approx } => ConfidenceStrategy::Hybrid {
                budget,
                approx: approx.with_seed(seed),
            },
        }
    }

    /// Derives the strategy for the `stream`-th unit of a batch: the
    /// sampling seed is re-derived through
    /// [`ApproximationOptions::stream_seed`], so every tuple of a batch
    /// samples from its own deterministic RNG stream regardless of which
    /// worker thread runs it.
    pub fn for_stream(self, stream: u64) -> Self {
        match self.approx_options() {
            Some(a) => {
                let seed = a.stream_seed(stream);
                self.with_seed(seed)
            }
            None => self,
        }
    }
}

/// Which computation actually produced a reported probability.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResolvedPath {
    /// The exact decomposition fold completed (within budget, if any).
    Exact,
    /// Karp–Luby/Dagum sampling produced the value.
    Sampled {
        /// True if sampling was the *fallback* of a hybrid run whose exact
        /// attempt exhausted its budget; false if the strategy was
        /// approximate from the start.
        fell_back: bool,
    },
}

impl ResolvedPath {
    /// True if the value came out of the sampling path.
    pub fn is_sampled(&self) -> bool {
        matches!(self, ResolvedPath::Sampled { .. })
    }
}

/// Sampling metadata of a [`ConfidenceReport`], the Monte-Carlo counterpart
/// of [`DecompositionStats`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SamplingStats {
    /// Total Monte-Carlo iterations across all phases (and both
    /// sub-estimates, for a conditioned run).
    pub iterations: u64,
    /// The relative error bound ε the run guarantees.
    pub epsilon: f64,
    /// The failure probability δ of that guarantee.
    pub delta: f64,
}

/// The result of a strategy-driven confidence computation: the probability
/// plus how it was obtained and what it cost.
#[derive(Clone, Debug, PartialEq)]
pub struct ConfidenceReport {
    /// The computed (or estimated) probability.
    pub probability: f64,
    /// The strategy that was requested (its short [`ConfidenceStrategy::name`]).
    pub strategy: &'static str,
    /// Which path produced the value.
    pub path: ResolvedPath,
    /// Exact-path decomposition counters (zeroed when the exact path was
    /// never attempted; the counters of an *aborted* attempt are not
    /// recoverable and contribute zero after a fallback, but exact folds
    /// that did complete — e.g. the exact denominator of a partially
    /// fallen-back conditioned ratio — are counted).
    pub stats: DecompositionStats,
    /// Sampling metadata, present iff the value was sampled.
    pub sampling: Option<SamplingStats>,
}

impl ConfidenceReport {
    fn exact(strategy: &ConfidenceStrategy, run: crate::stats::Confidence) -> Self {
        ConfidenceReport {
            probability: run.probability,
            strategy: strategy.name(),
            path: ResolvedPath::Exact,
            stats: run.stats,
            sampling: None,
        }
    }

    fn sampled(
        strategy: &ConfidenceStrategy,
        probability: f64,
        iterations: u64,
        approx: &ApproximationOptions,
        fell_back: bool,
    ) -> Self {
        ConfidenceReport {
            probability,
            strategy: strategy.name(),
            path: ResolvedPath::Sampled { fell_back },
            stats: DecompositionStats::default(),
            sampling: Some(SamplingStats {
                iterations,
                epsilon: approx.epsilon,
                delta: approx.delta,
            }),
        }
    }
}

/// Computes the confidence of `set` under the given strategy.
///
/// A shared decomposition cache benefits the exact path of `Exact` and
/// `Hybrid` runs exactly as in [`confidence_with_cache`]; the sampling path
/// does not consult it.
///
/// # Errors
///
/// * `Exact`: any error of the exact fold, including
///   [`CoreError::BudgetExceeded`];
/// * `Approximate` / `Hybrid`: invalid (ε, δ) or unknown variables, as
///   [`CoreError::Approx`]. An exhausted hybrid budget is *not* an error —
///   it triggers the sampling fallback.
pub fn estimate_confidence(
    set: &WsSet,
    table: &WorldTable,
    decomposition: &DecompositionOptions,
    strategy: &ConfidenceStrategy,
    cache: Option<&SharedDecompositionCache>,
) -> Result<ConfidenceReport> {
    estimate_confidence_with_options(
        set,
        table,
        decomposition,
        strategy,
        cache,
        &ParallelOptions::sequential(),
    )
}

/// [`estimate_confidence`] with the exact path running on
/// `parallel.workers()` work-stealing worker threads
/// ([`confidence_parallel`]).
///
/// The parallel exact fold is bit-identical to the sequential one, so the
/// strategy semantics are unchanged; under `Hybrid`, the node budget is
/// charged against one counter shared by all workers, so the
/// fallback-vs-exact choice triggers at the same **total** work for every
/// worker count (exactly so without a cache; with a shared cache, hit
/// timing can shift where the charges fall, just as sequential warm runs
/// differ from cold ones).
///
/// # Errors
///
/// As [`estimate_confidence`].
pub fn estimate_confidence_with_options(
    set: &WsSet,
    table: &WorldTable,
    decomposition: &DecompositionOptions,
    strategy: &ConfidenceStrategy,
    cache: Option<&SharedDecompositionCache>,
    parallel: &ParallelOptions,
) -> Result<ConfidenceReport> {
    match strategy {
        ConfidenceStrategy::Exact => {
            let run = confidence_parallel(set, table, decomposition, parallel, cache)?;
            Ok(ConfidenceReport::exact(strategy, run))
        }
        ConfidenceStrategy::Approximate(approx) => {
            let run = optimal_monte_carlo(set, table, approx)?;
            Ok(ConfidenceReport::sampled(
                strategy,
                run.estimate,
                run.total_iterations(),
                approx,
                false,
            ))
        }
        ConfidenceStrategy::Hybrid { budget, approx } => {
            let budgeted = decomposition.with_budget(*budget);
            match confidence_parallel(set, table, &budgeted, parallel, cache) {
                Ok(run) => Ok(ConfidenceReport::exact(strategy, run)),
                Err(CoreError::BudgetExceeded { .. }) => {
                    let run = optimal_monte_carlo(set, table, approx)?;
                    Ok(ConfidenceReport::sampled(
                        strategy,
                        run.estimate,
                        run.total_iterations(),
                        approx,
                        true,
                    ))
                }
                Err(other) => Err(other),
            }
        }
    }
}

/// Computes the conditioned confidence `P(query | condition)` under the
/// given strategy, **without materialising the conditioned database**: the
/// exact path evaluates the ratio of two decomposition folds
/// (`P(Intersect(Q, C)) / P(C)`), the sampling path runs
/// [`conditioned_monte_carlo`] with its composed (ε, δ) guarantee.
///
/// Under `Hybrid`, *each* of the two exact folds runs under the node
/// budget. If only the joint fold aborts, the already-computed **exact**
/// denominator `P(C)` is kept and just the numerator is sampled (at the
/// full (ε, δ) — the ratio inherits the numerator's relative error, so no
/// tightening is needed); if the condition fold itself aborts, the whole
/// ratio falls back to [`conditioned_monte_carlo`].
///
/// # Errors
///
/// * [`CoreError::EmptyCondition`] if the exact path finds `P(C) = 0`
///   (the sampling path reports the analogous
///   [`uprob_approx::ApproxError::ImpossibleCondition`] as
///   [`CoreError::Approx`]);
/// * otherwise as [`estimate_confidence`].
pub fn estimate_conditioned_confidence(
    query: &WsSet,
    condition: &WsSet,
    table: &WorldTable,
    decomposition: &DecompositionOptions,
    strategy: &ConfidenceStrategy,
    cache: Option<&SharedDecompositionCache>,
) -> Result<ConfidenceReport> {
    estimate_conditioned_confidence_with_options(
        query,
        condition,
        table,
        decomposition,
        strategy,
        cache,
        &ParallelOptions::sequential(),
    )
}

/// [`estimate_conditioned_confidence`] with both exact folds of the ratio
/// running on `parallel.workers()` work-stealing worker threads; the
/// strategy and fallback semantics are unchanged (the parallel folds are
/// bit-identical to the sequential ones; see
/// [`estimate_confidence_with_options`] for the budget accounting).
///
/// # Errors
///
/// As [`estimate_conditioned_confidence`].
pub fn estimate_conditioned_confidence_with_options(
    query: &WsSet,
    condition: &WsSet,
    table: &WorldTable,
    decomposition: &DecompositionOptions,
    strategy: &ConfidenceStrategy,
    cache: Option<&SharedDecompositionCache>,
    parallel: &ParallelOptions,
) -> Result<ConfidenceReport> {
    let exact_ratio = |options: &DecompositionOptions| -> Result<(f64, DecompositionStats)> {
        let condition_run = confidence_parallel(condition, table, options, parallel, cache)?;
        // NaN is treated like zero: a zero-probability condition is the
        // typed error, never a NaN/Inf posterior.
        if condition_run.probability <= 0.0 || condition_run.probability.is_nan() {
            return Err(CoreError::EmptyCondition);
        }
        let joint_set = query.intersect(condition).normalized();
        let joint_run = confidence_parallel(&joint_set, table, options, parallel, cache)?;
        let mut stats = condition_run.stats;
        stats.absorb(&joint_run.stats);
        Ok((
            (joint_run.probability / condition_run.probability).min(1.0),
            stats,
        ))
    };
    match strategy {
        ConfidenceStrategy::Exact => {
            let (probability, stats) = exact_ratio(decomposition)?;
            Ok(ConfidenceReport {
                probability,
                strategy: strategy.name(),
                path: ResolvedPath::Exact,
                stats,
                sampling: None,
            })
        }
        ConfidenceStrategy::Approximate(approx) => {
            let run = conditioned_monte_carlo(query, condition, table, approx)?;
            Ok(ConfidenceReport::sampled(
                strategy,
                run.estimate,
                run.total_iterations(),
                approx,
                false,
            ))
        }
        ConfidenceStrategy::Hybrid { budget, approx } => {
            let budgeted = decomposition.with_budget(*budget);
            let condition_run =
                match confidence_parallel(condition, table, &budgeted, parallel, cache) {
                    Ok(run) => {
                        if run.probability <= 0.0 || run.probability.is_nan() {
                            return Err(CoreError::EmptyCondition);
                        }
                        Some(run)
                    }
                    Err(CoreError::BudgetExceeded { .. }) => None,
                    Err(other) => return Err(other),
                };
            let Some(condition_run) = condition_run else {
                // The condition itself is past the wall: sample the whole
                // ratio.
                let run = conditioned_monte_carlo(query, condition, table, approx)?;
                return Ok(ConfidenceReport::sampled(
                    strategy,
                    run.estimate,
                    run.total_iterations(),
                    approx,
                    true,
                ));
            };
            let joint_set = query.intersect(condition).normalized();
            match confidence_parallel(&joint_set, table, &budgeted, parallel, cache) {
                Ok(joint_run) => {
                    let mut stats = condition_run.stats;
                    stats.absorb(&joint_run.stats);
                    Ok(ConfidenceReport {
                        probability: (joint_run.probability / condition_run.probability).min(1.0),
                        strategy: strategy.name(),
                        path: ResolvedPath::Exact,
                        stats,
                        sampling: None,
                    })
                }
                Err(CoreError::BudgetExceeded { .. }) => {
                    // Keep the exact denominator; only the numerator is
                    // estimated. The ratio's relative error is exactly the
                    // numerator's, so the full (ε, δ) applies unchanged.
                    let joint_run = optimal_monte_carlo(&joint_set, table, approx)?;
                    let mut report = ConfidenceReport::sampled(
                        strategy,
                        (joint_run.estimate / condition_run.probability).min(1.0),
                        joint_run.total_iterations(),
                        approx,
                        true,
                    );
                    report.stats = condition_run.stats;
                    Ok(report)
                }
                Err(other) => Err(other),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::confidence::confidence_brute_force;
    use uprob_wsd::WsDescriptor;

    /// The world table and ws-set S of Figure 3 (P(S) = 0.7578).
    fn figure3() -> (WorldTable, WsSet) {
        let mut w = WorldTable::new();
        let x = w
            .add_variable("x", &[(1, 0.1), (2, 0.4), (3, 0.5)])
            .unwrap();
        let y = w.add_variable("y", &[(1, 0.2), (2, 0.8)]).unwrap();
        let z = w.add_variable("z", &[(1, 0.4), (2, 0.6)]).unwrap();
        let u = w.add_variable("u", &[(1, 0.7), (2, 0.3)]).unwrap();
        let v = w.add_variable("v", &[(1, 0.5), (2, 0.5)]).unwrap();
        let s = WsSet::from_descriptors(vec![
            WsDescriptor::from_pairs(&w, &[(x, 1)]).unwrap(),
            WsDescriptor::from_pairs(&w, &[(x, 2), (y, 1)]).unwrap(),
            WsDescriptor::from_pairs(&w, &[(x, 2), (z, 1)]).unwrap(),
            WsDescriptor::from_pairs(&w, &[(u, 1), (v, 1)]).unwrap(),
            WsDescriptor::from_pairs(&w, &[(u, 2)]).unwrap(),
        ]);
        (w, s)
    }

    fn independent_pairs(n: usize) -> (WorldTable, WsSet) {
        // n variable-disjoint pairs: the budget-hostile shape of the
        // conditioning tests (exact cost grows quickly, sampling is easy).
        let mut w = WorldTable::new();
        let mut set = WsSet::empty();
        for i in 0..n {
            let x = w.add_boolean(&format!("x{i}"), 0.5).unwrap();
            let y = w.add_boolean(&format!("y{i}"), 0.5).unwrap();
            set.push(WsDescriptor::from_pairs(&w, &[(x, 1), (y, 1)]).unwrap());
        }
        (w, set)
    }

    #[test]
    fn hybrid_on_feasible_instances_is_bit_identical_to_exact() {
        let (w, s) = figure3();
        let options = DecompositionOptions::indve_minlog();
        let exact =
            estimate_confidence(&s, &w, &options, &ConfidenceStrategy::Exact, None).unwrap();
        let hybrid = estimate_confidence(
            &s,
            &w,
            &options,
            &ConfidenceStrategy::hybrid(1_000_000, 0.1, 0.01),
            None,
        )
        .unwrap();
        assert_eq!(exact.path, ResolvedPath::Exact);
        assert_eq!(hybrid.path, ResolvedPath::Exact, "no spurious fallback");
        assert_eq!(
            hybrid.probability.to_bits(),
            exact.probability.to_bits(),
            "hybrid must reproduce the exact result bit for bit"
        );
        assert!((exact.probability - 0.7578).abs() < 1e-12);
        assert!(hybrid.sampling.is_none());
        assert_eq!(hybrid.strategy, "hybrid");
    }

    #[test]
    fn hybrid_falls_back_to_sampling_when_the_budget_is_exhausted() {
        let (w, s) = independent_pairs(10);
        let exact_p = 1.0 - 0.75f64.powi(10);
        let options = DecompositionOptions::ve_minlog();
        // Exact aborts under this budget…
        let strategy = ConfidenceStrategy::Hybrid {
            budget: 5,
            approx: ApproximationOptions::default()
                .with_epsilon(0.05)
                .with_delta(0.05)
                .with_seed(13),
        };
        assert!(matches!(
            estimate_confidence(
                &s,
                &w,
                &options.with_budget(5),
                &ConfidenceStrategy::Exact,
                None
            ),
            Err(CoreError::BudgetExceeded { .. })
        ));
        // …but the hybrid run completes via sampling within ε.
        let report = estimate_confidence(&s, &w, &options, &strategy, None).unwrap();
        assert_eq!(report.path, ResolvedPath::Sampled { fell_back: true });
        let sampling = report.sampling.expect("sampling metadata present");
        assert!(sampling.iterations > 0);
        assert_eq!(sampling.epsilon, 0.05);
        assert!(
            (report.probability - exact_p).abs() <= 0.05 * exact_p + 0.01,
            "estimate {} vs exact {exact_p}",
            report.probability
        );
    }

    #[test]
    fn approximate_strategy_never_runs_the_exact_path() {
        let (w, s) = figure3();
        let strategy = ConfidenceStrategy::Approximate(
            ApproximationOptions::default()
                .with_epsilon(0.05)
                .with_delta(0.05)
                .with_seed(21),
        );
        let report =
            estimate_confidence(&s, &w, &DecompositionOptions::default(), &strategy, None).unwrap();
        assert_eq!(report.path, ResolvedPath::Sampled { fell_back: false });
        assert_eq!(report.stats, DecompositionStats::default());
        assert!((report.probability - 0.7578).abs() <= 0.05 * 0.7578 + 0.01);
    }

    #[test]
    fn conditioned_confidence_matches_brute_force_on_all_strategies() {
        let (w, s) = figure3();
        // Condition: u -> 1 (probability 0.7).
        let u = w.variable_by_name("u").unwrap();
        let c = WsSet::from_descriptors(vec![WsDescriptor::from_pairs(&w, &[(u, 1)]).unwrap()]);
        let joint = s.intersect(&c).normalized();
        let expected = confidence_brute_force(&joint, &w) / confidence_brute_force(&c, &w);
        let options = DecompositionOptions::indve_minlog();
        let exact =
            estimate_conditioned_confidence(&s, &c, &w, &options, &ConfidenceStrategy::Exact, None)
                .unwrap();
        assert!((exact.probability - expected).abs() < 1e-12);
        assert!(exact.stats.total_nodes() > 0);
        let hybrid = estimate_conditioned_confidence(
            &s,
            &c,
            &w,
            &options,
            &ConfidenceStrategy::hybrid(1_000_000, 0.1, 0.01),
            None,
        )
        .unwrap();
        assert_eq!(hybrid.probability.to_bits(), exact.probability.to_bits());
        assert_eq!(hybrid.path, ResolvedPath::Exact);
        let sampled = estimate_conditioned_confidence(
            &s,
            &c,
            &w,
            &options,
            &ConfidenceStrategy::Approximate(
                ApproximationOptions::default()
                    .with_epsilon(0.05)
                    .with_delta(0.05)
                    .with_seed(31),
            ),
            None,
        )
        .unwrap();
        assert!(
            (sampled.probability - expected).abs() <= 0.05 * expected + 0.01,
            "sampled {} vs exact {expected}",
            sampled.probability
        );
    }

    #[test]
    fn conditioned_hybrid_falls_back_on_budget_abort() {
        let (w, s) = independent_pairs(10);
        // Condition on the first pair's x variable.
        let x0 = w.variable_by_name("x0").unwrap();
        let c = WsSet::from_descriptors(vec![WsDescriptor::from_pairs(&w, &[(x0, 1)]).unwrap()]);
        let joint = s.intersect(&c).normalized();
        let expected = confidence_brute_force(&joint, &w) / 0.5;
        let strategy = ConfidenceStrategy::Hybrid {
            budget: 5,
            approx: ApproximationOptions::default()
                .with_epsilon(0.05)
                .with_delta(0.05)
                .with_seed(17),
        };
        let report = estimate_conditioned_confidence(
            &s,
            &c,
            &w,
            &DecompositionOptions::ve_minlog(),
            &strategy,
            None,
        )
        .unwrap();
        assert_eq!(report.path, ResolvedPath::Sampled { fell_back: true });
        assert!(
            (report.probability - expected).abs() <= 0.05 * expected + 0.015,
            "estimate {} vs exact {expected}",
            report.probability
        );
    }

    #[test]
    fn empty_conditions_are_errors_on_both_paths() {
        let (w, s) = figure3();
        let options = DecompositionOptions::default();
        let exact = estimate_conditioned_confidence(
            &s,
            &WsSet::empty(),
            &w,
            &options,
            &ConfidenceStrategy::Exact,
            None,
        );
        assert_eq!(exact.unwrap_err(), CoreError::EmptyCondition);
        let sampled = estimate_conditioned_confidence(
            &s,
            &WsSet::empty(),
            &w,
            &options,
            &ConfidenceStrategy::approximate(0.1, 0.05),
            None,
        );
        assert_eq!(
            sampled.unwrap_err(),
            CoreError::Approx(uprob_approx::ApproxError::ImpossibleCondition)
        );
    }

    #[test]
    fn strategy_helpers_and_stream_derivation() {
        let strategy = ConfidenceStrategy::hybrid(100, 0.1, 0.05);
        assert_eq!(strategy.name(), "hybrid");
        let a = strategy.approx_options().unwrap();
        assert_eq!(a.epsilon, 0.1);
        let s1 = strategy.for_stream(1);
        let s2 = strategy.for_stream(2);
        assert_ne!(
            s1.approx_options().unwrap().seed,
            s2.approx_options().unwrap().seed,
            "streams must sample independently"
        );
        assert_eq!(
            s1.approx_options().unwrap().seed,
            strategy.for_stream(1).approx_options().unwrap().seed,
            "stream derivation is deterministic"
        );
        assert_eq!(
            ConfidenceStrategy::Exact.for_stream(5),
            ConfidenceStrategy::Exact
        );
        assert!(ResolvedPath::Sampled { fell_back: true }.is_sampled());
        assert!(!ResolvedPath::Exact.is_sampled());
    }

    #[test]
    fn hybrid_fallback_choice_is_pinned_across_worker_counts() {
        // Regression for the budget accounting: `BudgetExceeded` must
        // trigger at the same total work regardless of the worker count
        // (one shared atomic counter, not per-worker budgets). Without a
        // cache the decomposition tree is a pure function of the instance,
        // so for every worker count the same instance must land on the
        // same side of the budget wall — and the exact-side probability
        // must be bit-identical.
        let (w, s) = independent_pairs(10);
        let exact_cost = estimate_confidence(
            &s,
            &w,
            &DecompositionOptions::ve_minlog(),
            &ConfidenceStrategy::Exact,
            None,
        )
        .unwrap()
        .stats
        .total_nodes();
        // One budget comfortably above the full cost, one comfortably below.
        let ample = ConfidenceStrategy::Hybrid {
            budget: exact_cost * 4,
            approx: ApproximationOptions::default().with_seed(41),
        };
        let tight = ConfidenceStrategy::Hybrid {
            budget: exact_cost / 4,
            approx: ApproximationOptions::default().with_seed(41),
        };
        let reference = estimate_confidence_with_options(
            &s,
            &w,
            &DecompositionOptions::ve_minlog(),
            &ample,
            None,
            &ParallelOptions::sequential(),
        )
        .unwrap();
        assert_eq!(reference.path, ResolvedPath::Exact);
        for workers in [1, 2, 4, 8] {
            let parallel = ParallelOptions::new(workers).with_grain(2);
            let exact_side = estimate_confidence_with_options(
                &s,
                &w,
                &DecompositionOptions::ve_minlog(),
                &ample,
                None,
                &parallel,
            )
            .unwrap();
            assert_eq!(
                exact_side.path,
                ResolvedPath::Exact,
                "{workers} workers: ample budget must stay exact"
            );
            assert_eq!(
                exact_side.probability.to_bits(),
                reference.probability.to_bits(),
                "{workers} workers: exact-side probability must be bit-identical"
            );
            let fallback_side = estimate_confidence_with_options(
                &s,
                &w,
                &DecompositionOptions::ve_minlog(),
                &tight,
                None,
                &parallel,
            )
            .unwrap();
            assert_eq!(
                fallback_side.path,
                ResolvedPath::Sampled { fell_back: true },
                "{workers} workers: tight budget must fall back"
            );
            assert_eq!(
                fallback_side.probability.to_bits(),
                estimate_confidence_with_options(
                    &s,
                    &w,
                    &DecompositionOptions::ve_minlog(),
                    &tight,
                    None,
                    &ParallelOptions::sequential(),
                )
                .unwrap()
                .probability
                .to_bits(),
                "{workers} workers: the seeded sampling fallback is deterministic too"
            );
        }
    }

    #[test]
    fn conditioned_confidence_with_options_is_bit_identical_across_workers() {
        let (w, s) = figure3();
        let u = w.variable_by_name("u").unwrap();
        let c = WsSet::from_descriptors(vec![WsDescriptor::from_pairs(&w, &[(u, 1)]).unwrap()]);
        let options = DecompositionOptions::indve_minlog();
        let reference =
            estimate_conditioned_confidence(&s, &c, &w, &options, &ConfidenceStrategy::Exact, None)
                .unwrap();
        for workers in [2, 4, 8] {
            let parallel = ParallelOptions::new(workers).with_grain(2);
            let got = estimate_conditioned_confidence_with_options(
                &s,
                &c,
                &w,
                &options,
                &ConfidenceStrategy::Exact,
                None,
                &parallel,
            )
            .unwrap();
            assert_eq!(
                got.probability.to_bits(),
                reference.probability.to_bits(),
                "{workers} workers"
            );
            assert_eq!(got.stats, reference.stats);
        }
    }

    #[test]
    fn hybrid_exact_attempt_benefits_from_a_shared_cache() {
        use crate::cache::SharedDecompositionCache;
        let (w, s) = figure3();
        let cache = SharedDecompositionCache::new();
        let strategy = ConfidenceStrategy::hybrid(1_000_000, 0.1, 0.01);
        let options = DecompositionOptions::indve_minlog();
        let cold = estimate_confidence(&s, &w, &options, &strategy, Some(&cache)).unwrap();
        let warm = estimate_confidence(&s, &w, &options, &strategy, Some(&cache)).unwrap();
        assert_eq!(warm.probability, cold.probability);
        assert!(warm.stats.cache_hits >= 1);
        assert_eq!(warm.stats.total_nodes(), 0, "full hit: no new work");
    }
}
