//! # uprob-core — ws-trees, exact confidence computation and conditioning
//!
//! The primary contribution of *Conditioning Probabilistic Databases*
//! (Koch & Olteanu, VLDB 2008), implemented on top of the `uprob-wsd` and
//! `uprob-urel` substrates:
//!
//! * [`WsTree`]: world-set trees (Section 4) with ⊗ (independence) and ⊕
//!   (mutually exclusive variable branching) nodes;
//! * [`decompose`]: the Davis–Putnam-style translation of ws-sets into
//!   ws-trees (`ComputeTree`, Figure 4), with independent partitioning and
//!   variable elimination and the **minlog** / **minmax** heuristics
//!   (Section 4.2, Figure 6);
//! * [`confidence`]: exact probability computation (Figure 7), streamed over
//!   the decomposition without materialising the tree, plus a brute-force
//!   oracle;
//! * [`elimination`]: the alternative ws-descriptor elimination method (WE,
//!   Section 6);
//! * [`conditioning`]: the `assert[B]` operation (Section 5, Figure 8) that
//!   transforms a database of priors into a posterior database, with the
//!   three simplification optimisations;
//! * [`cache`]: the shared decomposition cache — hash-consed canonical
//!   ws-set keys memoizing sub-set probabilities, shared across the
//!   confidence fold, WE and the batch query layer (see `DESIGN.md`);
//! * [`parallel`]: work-stealing parallel exact confidence — scoped worker
//!   threads expanding independent partitions and ⊕-split siblings
//!   concurrently, combined in canonical child order so results are
//!   **bit-identical** to the sequential fold for every worker count;
//! * [`engine`]: the unified confidence engine — an explicit
//!   [`ConfidenceStrategy`] (`Exact` / `Approximate(ε, δ)` /
//!   `Hybrid { budget, ε, δ }`) that runs the cached exact decomposition
//!   under a node budget and transparently falls back to Karp–Luby/Dagum
//!   sampling, including conditioned confidence `P(Q ∧ C)/P(C)`.
//!
//! ## Quick example
//!
//! ```
//! use uprob_wsd::{WorldTable, WsDescriptor, WsSet};
//! use uprob_core::{confidence, DecompositionOptions};
//!
//! // The ws-set S of Figure 3 of the paper; its probability is 0.7578.
//! let mut w = WorldTable::new();
//! let x = w.add_variable("x", &[(1, 0.1), (2, 0.4), (3, 0.5)]).unwrap();
//! let y = w.add_variable("y", &[(1, 0.2), (2, 0.8)]).unwrap();
//! let z = w.add_variable("z", &[(1, 0.4), (2, 0.6)]).unwrap();
//! let u = w.add_variable("u", &[(1, 0.7), (2, 0.3)]).unwrap();
//! let v = w.add_variable("v", &[(1, 0.5), (2, 0.5)]).unwrap();
//! let s = WsSet::from_descriptors(vec![
//!     WsDescriptor::from_pairs(&w, &[(x, 1)]).unwrap(),
//!     WsDescriptor::from_pairs(&w, &[(x, 2), (y, 1)]).unwrap(),
//!     WsDescriptor::from_pairs(&w, &[(x, 2), (z, 1)]).unwrap(),
//!     WsDescriptor::from_pairs(&w, &[(u, 1), (v, 1)]).unwrap(),
//!     WsDescriptor::from_pairs(&w, &[(u, 2)]).unwrap(),
//! ]);
//! let result = confidence(&s, &w, &DecompositionOptions::indve_minlog()).unwrap();
//! assert!((result.probability - 0.7578).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod conditioning;
pub mod confidence;
pub mod decompose;
pub mod elimination;
pub mod engine;
pub mod error;
pub mod heuristics;
pub mod parallel;
pub mod stats;
pub mod wstree;

pub use cache::{
    CacheLookup, CacheStats, DecompositionCache, InheritOutcome, SharedDecompositionCache,
};
pub use conditioning::{
    condition, condition_all, intersect_conditions, simplify_with_mapping, Conditioned,
    ConditioningMethod, ConditioningOptions,
};
pub use confidence::{confidence, confidence_brute_force, confidence_with_cache, tree_probability};
pub use decompose::{build_tree, DecompositionMethod, DecompositionOptions};
pub use elimination::{
    confidence_by_elimination, confidence_by_elimination_parallel, confidence_by_elimination_with,
    mutex_equivalent,
};
pub use engine::{
    estimate_conditioned_confidence, estimate_conditioned_confidence_with_options,
    estimate_confidence, estimate_confidence_with_options, ConfidenceReport, ConfidenceStrategy,
    ResolvedPath, SamplingStats,
};
pub use error::CoreError;
pub use heuristics::VariableHeuristic;
pub use parallel::{available_workers, confidence_parallel, panic_message, ParallelOptions};
pub use stats::{Confidence, DecompositionStats};
pub use uprob_approx::{fan_out_indexed, ApproximationOptions};
pub use wstree::WsTree;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CoreError>;
