//! World-set trees (Section 4, Definition 4.1).
//!
//! A ws-tree makes the structure of a ws-set explicit: ⊗ nodes combine
//! **independent** children (their variable sets are disjoint), ⊕ nodes
//! branch on the **mutually exclusive** assignments of one variable, and
//! leaves hold the nullary descriptor `∅`. The world-set represented by a
//! ws-tree is the ws-set collecting the edge annotations of every
//! root-to-leaf path.

use std::collections::BTreeSet;
use std::fmt;

use uprob_wsd::{ValueIndex, VarId, WorldTable, WsDescriptor, WsSet};

/// A world-set tree.
#[derive(Clone, Debug, PartialEq)]
pub enum WsTree {
    /// `⊥`: the empty world-set (probability 0). Produced when a branch of
    /// the decomposition reaches an empty ws-set.
    Bottom,
    /// `∅` leaf: the whole world-set in the current context (probability 1).
    Leaf,
    /// `⊗` node: children over pairwise disjoint variable sets; the
    /// represented world-set is the union of the children's world-sets.
    Independent(Vec<WsTree>),
    /// `⊕` node: branches on the alternative assignments of `var`; each
    /// outgoing edge is annotated with a different assignment.
    Choice {
        /// The variable this node eliminates.
        var: VarId,
        /// `(value, subtree)` pairs; values are pairwise distinct.
        branches: Vec<(ValueIndex, WsTree)>,
    },
}

/// Size and shape statistics of a materialised ws-tree.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TreeShape {
    /// Number of ⊗ nodes.
    pub independent_nodes: u64,
    /// Number of ⊕ nodes.
    pub choice_nodes: u64,
    /// Number of `∅` leaves.
    pub leaves: u64,
    /// Number of `⊥` nodes.
    pub bottoms: u64,
    /// Number of edges out of ⊕ nodes.
    pub edges: u64,
    /// Height of the tree (a single leaf has height 1).
    pub height: u64,
}

impl TreeShape {
    /// Total number of nodes.
    pub fn total_nodes(&self) -> u64 {
        self.independent_nodes + self.choice_nodes + self.leaves + self.bottoms
    }
}

impl WsTree {
    /// True if this tree denotes the empty world-set everywhere.
    pub fn is_bottom(&self) -> bool {
        matches!(self, WsTree::Bottom)
    }

    /// The ws-set of all root-to-leaf path annotations (the semantics of the
    /// tree, Section 4).
    pub fn to_ws_set(&self) -> WsSet {
        let mut out = WsSet::empty();
        let mut prefix = WsDescriptor::empty();
        self.collect_paths(&mut prefix, &mut out);
        out
    }

    fn collect_paths(&self, prefix: &mut WsDescriptor, out: &mut WsSet) {
        match self {
            WsTree::Bottom => {}
            WsTree::Leaf => out.push(prefix.clone()),
            WsTree::Independent(children) => {
                for child in children {
                    child.collect_paths(prefix, out);
                }
            }
            WsTree::Choice { var, branches } => {
                for (value, child) in branches {
                    let saved = prefix.clone();
                    prefix
                        .assign(*var, *value)
                        // uprob-lint: allow(panic-expect) -- decomposition strips var from every subtree before recursing
                        .expect("ws-tree paths assign each variable at most once");
                    child.collect_paths(prefix, out);
                    *prefix = saved;
                }
            }
        }
    }

    /// The set of variables occurring in the tree.
    pub fn variables(&self) -> BTreeSet<VarId> {
        let mut vars = BTreeSet::new();
        self.collect_variables(&mut vars);
        vars
    }

    fn collect_variables(&self, vars: &mut BTreeSet<VarId>) {
        match self {
            WsTree::Bottom | WsTree::Leaf => {}
            WsTree::Independent(children) => {
                for child in children {
                    child.collect_variables(vars);
                }
            }
            WsTree::Choice { var, branches } => {
                vars.insert(*var);
                for (_, child) in branches {
                    child.collect_variables(vars);
                }
            }
        }
    }

    /// Checks the three structural constraints of Definition 4.1:
    ///
    /// 1. a variable occurs at most once on each root-to-leaf path,
    /// 2. the outgoing edges of a ⊕ node carry pairwise distinct assignments
    ///    of its variable, all within the variable's domain,
    /// 3. the children of a ⊗ node use pairwise disjoint variable sets.
    pub fn validate(&self, table: &WorldTable) -> Result<(), String> {
        let mut on_path = BTreeSet::new();
        self.validate_rec(table, &mut on_path)
    }

    fn validate_rec(
        &self,
        table: &WorldTable,
        on_path: &mut BTreeSet<VarId>,
    ) -> Result<(), String> {
        match self {
            WsTree::Bottom | WsTree::Leaf => Ok(()),
            WsTree::Independent(children) => {
                let mut seen: BTreeSet<VarId> = BTreeSet::new();
                for child in children {
                    let child_vars = child.variables();
                    if !seen.is_disjoint(&child_vars) {
                        return Err("children of a ⊗ node share variables".to_string());
                    }
                    seen.extend(child_vars.iter().copied());
                    child.validate_rec(table, on_path)?;
                }
                Ok(())
            }
            WsTree::Choice { var, branches } => {
                if on_path.contains(var) {
                    return Err(format!("variable {var} occurs twice on a path"));
                }
                let domain = table
                    .domain_size(*var)
                    .map_err(|e| format!("unknown variable {var}: {e}"))?;
                let mut values = BTreeSet::new();
                for (value, _) in branches {
                    if value.index() >= domain {
                        return Err(format!("value {value} out of range for variable {var}"));
                    }
                    if !values.insert(*value) {
                        return Err(format!(
                            "two edges of a ⊕ node carry the same assignment of {var}"
                        ));
                    }
                }
                on_path.insert(*var);
                for (_, child) in branches {
                    child.validate_rec(table, on_path)?;
                }
                on_path.remove(var);
                Ok(())
            }
        }
    }

    /// Shape statistics (node counts, height).
    pub fn shape(&self) -> TreeShape {
        let mut shape = TreeShape::default();
        let height = self.shape_rec(&mut shape);
        shape.height = height;
        shape
    }

    fn shape_rec(&self, shape: &mut TreeShape) -> u64 {
        match self {
            WsTree::Bottom => {
                shape.bottoms += 1;
                1
            }
            WsTree::Leaf => {
                shape.leaves += 1;
                1
            }
            WsTree::Independent(children) => {
                shape.independent_nodes += 1;
                1 + children
                    .iter()
                    .map(|c| c.shape_rec(shape))
                    .max()
                    .unwrap_or(0)
            }
            WsTree::Choice { branches, .. } => {
                shape.choice_nodes += 1;
                shape.edges += branches.len() as u64;
                1 + branches
                    .iter()
                    .map(|(_, c)| c.shape_rec(shape))
                    .max()
                    .unwrap_or(0)
            }
        }
    }

    /// Renders the tree with indentation, variable names and value labels.
    pub fn display<'a>(&'a self, table: &'a WorldTable) -> impl fmt::Display + 'a {
        TreeDisplay { tree: self, table }
    }
}

struct TreeDisplay<'a> {
    tree: &'a WsTree,
    table: &'a WorldTable,
}

impl fmt::Display for TreeDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(
            tree: &WsTree,
            table: &WorldTable,
            indent: usize,
            f: &mut fmt::Formatter<'_>,
        ) -> fmt::Result {
            let pad = "  ".repeat(indent);
            match tree {
                WsTree::Bottom => writeln!(f, "{pad}⊥"),
                WsTree::Leaf => writeln!(f, "{pad}∅"),
                WsTree::Independent(children) => {
                    writeln!(f, "{pad}⊗")?;
                    for child in children {
                        go(child, table, indent + 1, f)?;
                    }
                    Ok(())
                }
                WsTree::Choice { var, branches } => {
                    let name = table
                        .variable(*var)
                        .map(|v| v.name.clone())
                        .unwrap_or_else(|_| format!("{var}"));
                    writeln!(f, "{pad}⊕ {name}")?;
                    for (value, child) in branches {
                        let label = table
                            .value_label(*var, *value)
                            .map(|l| l.to_string())
                            .unwrap_or_else(|_| format!("{value}"));
                        writeln!(f, "{pad}  {name} -> {label}:")?;
                        go(child, table, indent + 2, f)?;
                    }
                    Ok(())
                }
            }
        }
        go(self.tree, self.table, 0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the world table of Figure 3 and the ws-tree R shown there.
    fn figure3() -> (WorldTable, [VarId; 5], WsTree) {
        let mut w = WorldTable::new();
        let x = w
            .add_variable("x", &[(1, 0.1), (2, 0.4), (3, 0.5)])
            .unwrap();
        let y = w.add_variable("y", &[(1, 0.2), (2, 0.8)]).unwrap();
        let z = w.add_variable("z", &[(1, 0.4), (2, 0.6)]).unwrap();
        let u = w.add_variable("u", &[(1, 0.7), (2, 0.3)]).unwrap();
        let v = w.add_variable("v", &[(1, 0.5), (2, 0.5)]).unwrap();
        // Left subtree: ⊕ x with x->1: ∅ and x->2: ⊗(⊕ y(1:∅), ⊕ z(1:∅)).
        let left = WsTree::Choice {
            var: x,
            branches: vec![
                (ValueIndex(0), WsTree::Leaf),
                (
                    ValueIndex(1),
                    WsTree::Independent(vec![
                        WsTree::Choice {
                            var: y,
                            branches: vec![(ValueIndex(0), WsTree::Leaf)],
                        },
                        WsTree::Choice {
                            var: z,
                            branches: vec![(ValueIndex(0), WsTree::Leaf)],
                        },
                    ]),
                ),
            ],
        };
        // Right subtree: ⊕ u with u->1: ⊕ v(1:∅) and u->2: ∅.
        let right = WsTree::Choice {
            var: u,
            branches: vec![
                (
                    ValueIndex(0),
                    WsTree::Choice {
                        var: v,
                        branches: vec![(ValueIndex(0), WsTree::Leaf)],
                    },
                ),
                (ValueIndex(1), WsTree::Leaf),
            ],
        };
        let tree = WsTree::Independent(vec![left, right]);
        (w, [x, y, z, u, v], tree)
    }

    #[test]
    fn figure3_tree_is_valid_and_has_expected_shape() {
        let (w, _, tree) = figure3();
        assert!(tree.validate(&w).is_ok());
        let shape = tree.shape();
        assert_eq!(shape.independent_nodes, 2);
        assert_eq!(shape.choice_nodes, 5);
        assert_eq!(shape.leaves, 5);
        assert_eq!(shape.bottoms, 0);
        assert_eq!(shape.total_nodes(), 12);
        assert_eq!(shape.height, 5);
        assert_eq!(tree.variables().len(), 5);
    }

    #[test]
    fn figure3_tree_represents_the_ws_set_s() {
        let (w, [x, y, z, u, v], tree) = figure3();
        let s = WsSet::from_descriptors(vec![
            WsDescriptor::from_pairs(&w, &[(x, 1)]).unwrap(),
            WsDescriptor::from_pairs(&w, &[(x, 2), (y, 1)]).unwrap(),
            WsDescriptor::from_pairs(&w, &[(x, 2), (z, 1)]).unwrap(),
            WsDescriptor::from_pairs(&w, &[(u, 1), (v, 1)]).unwrap(),
            WsDescriptor::from_pairs(&w, &[(u, 2)]).unwrap(),
        ]);
        let paths = tree.to_ws_set();
        assert_eq!(paths.len(), 5);
        assert!(paths.is_equivalent_by_enumeration(&s, &w));
    }

    #[test]
    fn validation_rejects_malformed_trees() {
        let (w, [x, y, ..], _) = figure3();
        // Same variable twice on a path.
        let bad_path = WsTree::Choice {
            var: x,
            branches: vec![(
                ValueIndex(0),
                WsTree::Choice {
                    var: x,
                    branches: vec![(ValueIndex(1), WsTree::Leaf)],
                },
            )],
        };
        assert!(bad_path.validate(&w).is_err());
        // Duplicate edge annotation.
        let bad_edges = WsTree::Choice {
            var: x,
            branches: vec![(ValueIndex(0), WsTree::Leaf), (ValueIndex(0), WsTree::Leaf)],
        };
        assert!(bad_edges.validate(&w).is_err());
        // ⊗ children sharing a variable.
        let shared = WsTree::Independent(vec![
            WsTree::Choice {
                var: y,
                branches: vec![(ValueIndex(0), WsTree::Leaf)],
            },
            WsTree::Choice {
                var: y,
                branches: vec![(ValueIndex(1), WsTree::Leaf)],
            },
        ]);
        assert!(shared.validate(&w).is_err());
        // Out-of-domain value.
        let out_of_range = WsTree::Choice {
            var: y,
            branches: vec![(ValueIndex(9), WsTree::Leaf)],
        };
        assert!(out_of_range.validate(&w).is_err());
    }

    #[test]
    fn bottom_and_leaf_semantics() {
        let (w, _, _) = figure3();
        assert!(WsTree::Bottom.to_ws_set().is_empty());
        assert!(WsTree::Bottom.is_bottom());
        let leaf = WsTree::Leaf.to_ws_set();
        assert!(leaf.contains_universal());
        assert!((leaf.probability_by_enumeration(&w) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_contains_node_markers() {
        let (w, _, tree) = figure3();
        let text = format!("{}", tree.display(&w));
        assert!(text.contains("⊗"));
        assert!(text.contains("⊕ x"));
        assert!(text.contains("x -> 2:"));
        assert!(text.contains("∅"));
    }
}
