//! Exact confidence (probability) computation for ws-sets (Section 4.3).
//!
//! The probability of a ws-tree is defined by structural recursion
//! (Figure 7):
//!
//! * `P(⊗ S_1 … S_k) = 1 − Π_i (1 − P(S_i))` — the children are
//!   independent, so the probability of their union follows from inclusion
//!   of independent events;
//! * `P(⊕_i (x → i : S_i)) = Σ_i P({x → i}) · P(S_i)` — the branches are
//!   mutually exclusive;
//! * `P(∅) = 1`, `P(⊥) = 0`.
//!
//! [`confidence`] composes this recursion with the decomposition of
//! [`crate::decompose`] without materialising the ws-tree (the
//! `ComputeTree ∘ P` composition of the paper); [`tree_probability`]
//! evaluates an already-materialised tree; [`confidence_brute_force`]
//! enumerates the possible worlds and is used as a test oracle.

use uprob_wsd::{NeumaierSum, WorldTable, WsSet};

use crate::cache::{CacheLookup, SharedDecompositionCache};
use crate::decompose::{Decomposer, DecompositionOptions, DecompositionStep};
use crate::stats::Confidence;
use crate::wstree::WsTree;
use crate::Result;

/// Computes the exact probability of the world-set denoted by `set`,
/// folding Figure 7 over the Davis–Putnam-style decomposition.
///
/// # Errors
///
/// Returns [`crate::CoreError::BudgetExceeded`] if `options.node_budget` is
/// set and exhausted.
pub fn confidence(
    set: &WsSet,
    table: &WorldTable,
    options: &DecompositionOptions,
) -> Result<Confidence> {
    confidence_with_cache(set, table, options, None)
}

/// Like [`confidence`], but consults and populates a shared decomposition
/// cache: every sub-ws-set with at least two descriptors is canonicalised
/// and memoized, so identical sub-problems — within one run or across runs
/// sharing the cache — are solved once. The `cache_hits` / `cache_misses`
/// counters of the returned [`Confidence::stats`] report this run's reuse.
///
/// A cache hit returns without charging decomposition nodes, so budgeted
/// runs can succeed with a warm cache where they would exhaust the budget
/// cold; the budget bounds the *new* work of a run.
///
/// # Errors
///
/// Returns [`crate::CoreError::BudgetExceeded`] if `options.node_budget` is
/// set and exhausted, and [`crate::CoreError::CacheTableMismatch`] if
/// `cache` was first used with a different world table.
pub fn confidence_with_cache(
    set: &WsSet,
    table: &WorldTable,
    options: &DecompositionOptions,
    cache: Option<&SharedDecompositionCache>,
) -> Result<Confidence> {
    if let Some(shared) = cache {
        shared.bind_table(table)?;
    }
    let mut decomposer = Decomposer::new(table, *options);
    let probability = confidence_rec(set, &mut decomposer, 1, cache)?;
    Ok(Confidence {
        probability,
        stats: decomposer.stats,
    })
}

pub(crate) fn confidence_rec(
    set: &WsSet,
    decomposer: &mut Decomposer<'_>,
    depth: u64,
    cache: Option<&SharedDecompositionCache>,
) -> Result<f64> {
    // Trivial sets are cheaper to solve directly and huge sets rarely
    // recur, so only sets in the cacheable band are memoized.
    let pending_key = match cache {
        Some(shared) if SharedDecompositionCache::is_cacheable(set) => match shared.lookup(set) {
            CacheLookup::Hit(p) => {
                decomposer.stats.cache_hits += 1;
                return Ok(p);
            }
            CacheLookup::Miss(key) => {
                decomposer.stats.cache_misses += 1;
                Some(key)
            }
        },
        _ => None,
    };
    let probability = match decomposer.step(set, depth)? {
        DecompositionStep::Empty => 0.0,
        DecompositionStep::Universal => 1.0,
        DecompositionStep::Partition(parts) => {
            let mut complement = 1.0;
            for part in &parts {
                let p = confidence_rec(part, decomposer, depth + 1, cache)?;
                complement *= 1.0 - p;
            }
            1.0 - complement
        }
        DecompositionStep::Eliminate {
            var,
            branches,
            missing_values,
            tail,
        } => {
            let table = decomposer.table();
            let mut total = NeumaierSum::new();
            for (value, child) in &branches {
                let weight = table.probability(var, *value)?;
                if weight == 0.0 {
                    continue;
                }
                total.add(weight * confidence_rec(child, decomposer, depth + 1, cache)?);
            }
            // Alternatives of `var` not occurring in the set only contribute
            // through the tail T, whose probability is computed once.
            if !missing_values.is_empty() && !tail.is_empty() {
                let mut missing_weight = NeumaierSum::new();
                for value in &missing_values {
                    missing_weight.add(table.probability(var, *value)?);
                }
                let missing_weight = missing_weight.value();
                if missing_weight > 0.0 {
                    total
                        .add(missing_weight * confidence_rec(&tail, decomposer, depth + 1, cache)?);
                }
            }
            total.value()
        }
    };
    if let (Some(shared), Some(key)) = (cache, pending_key) {
        shared.insert(key, probability);
    }
    Ok(probability)
}

/// Evaluates the probability of a materialised ws-tree (Figure 7).
///
/// # Panics
///
/// Panics if the tree refers to variables or values missing from `table`;
/// validate the tree first if its provenance is untrusted.
pub fn tree_probability(tree: &WsTree, table: &WorldTable) -> f64 {
    match tree {
        WsTree::Bottom => 0.0,
        WsTree::Leaf => 1.0,
        WsTree::Independent(children) => {
            let complement: f64 = children
                .iter()
                .map(|c| 1.0 - tree_probability(c, table))
                .product();
            1.0 - complement
        }
        WsTree::Choice { var, branches } => branches
            .iter()
            .map(|(value, child)| {
                let weight = table
                    .probability(*var, *value)
                    // uprob-lint: allow(panic-expect) -- tree nodes are built from this table's domains
                    .expect("tree value must be in the variable domain");
                weight * tree_probability(child, table)
            })
            .collect::<NeumaierSum>()
            .value(),
    }
}

/// Brute-force probability computation by enumerating all possible worlds.
///
/// Exponential in the number of variables of `table`; used as the test
/// oracle and as the baseline that the paper mentions but does not plot.
pub fn confidence_brute_force(set: &WsSet, table: &WorldTable) -> f64 {
    set.probability_by_enumeration(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::build_tree;
    use crate::heuristics::VariableHeuristic;
    use uprob_wsd::{VarId, WsDescriptor};

    /// The world table and ws-set S of Figure 3 (P(S) = 0.7578).
    fn figure3() -> (WorldTable, WsSet) {
        let mut w = WorldTable::new();
        let x = w
            .add_variable("x", &[(1, 0.1), (2, 0.4), (3, 0.5)])
            .unwrap();
        let y = w.add_variable("y", &[(1, 0.2), (2, 0.8)]).unwrap();
        let z = w.add_variable("z", &[(1, 0.4), (2, 0.6)]).unwrap();
        let u = w.add_variable("u", &[(1, 0.7), (2, 0.3)]).unwrap();
        let v = w.add_variable("v", &[(1, 0.5), (2, 0.5)]).unwrap();
        let s = WsSet::from_descriptors(vec![
            WsDescriptor::from_pairs(&w, &[(x, 1)]).unwrap(),
            WsDescriptor::from_pairs(&w, &[(x, 2), (y, 1)]).unwrap(),
            WsDescriptor::from_pairs(&w, &[(x, 2), (z, 1)]).unwrap(),
            WsDescriptor::from_pairs(&w, &[(u, 1), (v, 1)]).unwrap(),
            WsDescriptor::from_pairs(&w, &[(u, 2)]).unwrap(),
        ]);
        (w, s)
    }

    #[test]
    fn example_4_7_probability_is_0_7578() {
        let (w, s) = figure3();
        for options in [
            DecompositionOptions::indve_minlog(),
            DecompositionOptions::indve_minmax(),
            DecompositionOptions::ve_minlog(),
        ] {
            let result = confidence(&s, &w, &options).unwrap();
            assert!(
                (result.probability - 0.7578).abs() < 1e-12,
                "{options:?} computed {}",
                result.probability
            );
        }
        assert!((confidence_brute_force(&s, &w) - 0.7578).abs() < 1e-12);
    }

    #[test]
    fn tree_probability_matches_streaming_confidence() {
        let (w, s) = figure3();
        let options = DecompositionOptions::indve_minlog();
        let (tree, _) = build_tree(&s, &w, &options).unwrap();
        let from_tree = tree_probability(&tree, &w);
        let streamed = confidence(&s, &w, &options).unwrap().probability;
        assert!((from_tree - streamed).abs() < 1e-12);
        assert!((from_tree - 0.7578).abs() < 1e-12);
    }

    #[test]
    fn empty_and_universal_probabilities() {
        let (w, _) = figure3();
        let options = DecompositionOptions::default();
        assert_eq!(
            confidence(&WsSet::empty(), &w, &options)
                .unwrap()
                .probability,
            0.0
        );
        assert_eq!(
            confidence(&WsSet::universal(), &w, &options)
                .unwrap()
                .probability,
            1.0
        );
    }

    #[test]
    fn ssn_example_confidence_of_fd_worlds_is_0_44() {
        // Example 5.1: the worlds on which SSN -> NAME holds have total
        // probability .2 + .8 * .3 = .44.
        let mut w = WorldTable::new();
        let j = w.add_variable("j", &[(1, 0.2), (7, 0.8)]).unwrap();
        let b = w.add_variable("b", &[(4, 0.3), (7, 0.7)]).unwrap();
        let s = WsSet::from_descriptors(vec![
            WsDescriptor::from_pairs(&w, &[(j, 1)]).unwrap(),
            WsDescriptor::from_pairs(&w, &[(j, 7), (b, 4)]).unwrap(),
        ]);
        let c = confidence(&s, &w, &DecompositionOptions::indve_minlog()).unwrap();
        assert!((c.probability - 0.44).abs() < 1e-12);
    }

    #[test]
    fn all_heuristics_agree_with_brute_force_on_random_sets() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for case in 0..30 {
            let mut w = WorldTable::new();
            let num_vars = rng.random_range(2..=5usize);
            let vars: Vec<VarId> = (0..num_vars)
                .map(|i| {
                    let domain = rng.random_range(2..=3usize);
                    w.add_uniform(&format!("v{i}"), domain).unwrap()
                })
                .collect();
            let num_descriptors = rng.random_range(1..=6usize);
            let mut set = WsSet::empty();
            for _ in 0..num_descriptors {
                let mut d = WsDescriptor::empty();
                let width = rng.random_range(0..=num_vars);
                for _ in 0..width {
                    let var = vars[rng.random_range(0..num_vars)];
                    let domain = w.domain_size(var).unwrap();
                    let value = rng.random_range(0..domain);
                    let _ = d.assign(var, uprob_wsd::ValueIndex(value as u16));
                }
                set.push(d);
            }
            let expected = confidence_brute_force(&set, &w);
            for heuristic in VariableHeuristic::ALL {
                for method in [
                    crate::decompose::DecompositionMethod::IndVe,
                    crate::decompose::DecompositionMethod::VeOnly,
                ] {
                    let options = DecompositionOptions {
                        method,
                        heuristic,
                        node_budget: None,
                    };
                    let got = confidence(&set, &w, &options).unwrap().probability;
                    assert!(
                        (got - expected).abs() < 1e-9,
                        "case {case}: {method:?}/{heuristic:?} computed {got}, expected {expected}"
                    );
                }
            }
        }
    }

    #[test]
    fn stats_reflect_the_decomposition_work() {
        let (w, s) = figure3();
        let result = confidence(&s, &w, &DecompositionOptions::indve_minlog()).unwrap();
        assert!(result.stats.independent_nodes >= 1);
        assert!(result.stats.choice_nodes >= 2);
        assert!(result.stats.leaves >= 2);
        assert!(result.stats.max_depth >= 2);
    }

    #[test]
    fn budget_is_enforced() {
        let (w, s) = figure3();
        let options = DecompositionOptions::indve_minlog().with_budget(1);
        assert!(confidence(&s, &w, &options).is_err());
    }

    #[test]
    fn choice_fold_survives_many_branch_drift() {
        // Regression for the naive `total +=` over ⊕-branch contributions:
        // one variable with a 0.5 head, 29998 half-ulp alternatives (each
        // absorbed without a trace by a naive sum) and a balancing tail.
        // The singleton cover {x -> v | v} has probability exactly 1.0.
        let tiny = 2f64.powi(-54);
        let tiny_count = 29_998usize;
        let mut alternatives: Vec<(i64, f64)> = vec![(0, 0.5)];
        alternatives.extend((0..tiny_count).map(|i| (1 + i as i64, tiny)));
        alternatives.push((1 + tiny_count as i64, 0.5 - tiny_count as f64 * tiny));
        let mut w = WorldTable::new();
        let x = w.add_variable("x", &alternatives).unwrap();
        let set: WsSet = (0..alternatives.len())
            .map(|v| {
                WsDescriptor::from_assignments([uprob_wsd::value::Assignment::new(
                    x,
                    uprob_wsd::ValueIndex(v as u16),
                )])
                .unwrap()
            })
            .collect();

        // The drift the naive fold produced: weights summed in branch order.
        let mut naive = 0.0;
        for (_, p) in &alternatives {
            naive += p;
        }
        assert!(
            (naive - 1.0).abs() > 1e-12,
            "instance no longer triggers naive drift: {:e}",
            (naive - 1.0).abs()
        );

        let result = confidence(&set, &w, &DecompositionOptions::ve_minlog()).unwrap();
        assert!(
            (result.probability - 1.0).abs() < 1e-13,
            "compensated ⊕-fold drifted: {:e}",
            (result.probability - 1.0).abs()
        );
    }

    #[test]
    fn cached_confidence_matches_uncached_and_reports_reuse() {
        use crate::cache::SharedDecompositionCache;
        let (w, s) = figure3();
        let options = DecompositionOptions::indve_minlog();
        let cache = SharedDecompositionCache::new();
        let cold = confidence_with_cache(&s, &w, &options, Some(&cache)).unwrap();
        let plain = confidence(&s, &w, &options).unwrap();
        assert!((cold.probability - plain.probability).abs() < 1e-12);
        assert_eq!(cold.stats.cache_hits, 0);
        assert!(cold.stats.cache_misses > 0);
        // A second run over the same set is answered entirely from the cache.
        let warm = confidence_with_cache(&s, &w, &options, Some(&cache)).unwrap();
        assert_eq!(warm.probability, cold.probability);
        assert_eq!(warm.stats.cache_hits, 1);
        assert_eq!(
            warm.stats.total_nodes(),
            0,
            "no decomposition work on a full hit"
        );
        let stats = cache.stats();
        assert!(stats.hits >= 1);
        assert!(stats.entries >= 1);
    }

    #[test]
    fn cached_confidence_agrees_with_brute_force_on_random_sets() {
        use crate::cache::SharedDecompositionCache;
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        // One cache shared across every set of one "database": overlapping
        // sub-sets across cases must never change any probability.
        let mut rng = StdRng::seed_from_u64(23);
        let mut w = WorldTable::new();
        let vars: Vec<VarId> = (0..5)
            .map(|i| w.add_uniform(&format!("v{i}"), 2 + (i % 2)).unwrap())
            .collect();
        let cache = SharedDecompositionCache::new();
        for case in 0..40 {
            let mut set = WsSet::empty();
            for _ in 0..rng.random_range(1..=6usize) {
                let mut d = WsDescriptor::empty();
                for _ in 0..rng.random_range(0..=4usize) {
                    let var = vars[rng.random_range(0..vars.len())];
                    let domain = w.domain_size(var).unwrap();
                    let _ = d.assign(
                        var,
                        uprob_wsd::ValueIndex(rng.random_range(0..domain) as u16),
                    );
                }
                set.push(d);
            }
            let expected = confidence_brute_force(&set, &w);
            for options in [
                DecompositionOptions::indve_minlog(),
                DecompositionOptions::ve_minlog(),
            ] {
                let got = confidence_with_cache(&set, &w, &options, Some(&cache))
                    .unwrap()
                    .probability;
                assert!(
                    (got - expected).abs() < 1e-9,
                    "case {case}: cached {options:?} computed {got}, expected {expected}"
                );
            }
        }
        assert!(
            cache.stats().hits > 0,
            "repeated sub-sets must hit the cache"
        );
    }
}
