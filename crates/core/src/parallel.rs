//! Work-stealing parallel exact confidence computation.
//!
//! The ws-tree decomposition is naturally parallel: the parts of an
//! independent partition (⊗) and the sibling subtrees of a ⊕-split are
//! disjoint subproblems. [`confidence_parallel`] expands them on scoped
//! worker threads — one lock-protected deque per worker, owners popping
//! newest-first and thieves stealing oldest-first so the largest pending
//! subtrees migrate — while an arena of *combine nodes* reassembles the
//! partial results strictly in canonical child order with the same
//! compensated (Neumaier) arithmetic as the sequential fold of
//! [`crate::confidence`].
//!
//! # Determinism contract
//!
//! The returned probability is **bit-identical** to
//! [`confidence_with_cache`] for every worker count. The argument: the
//! probability of every sub-ws-set is a pure function of the sub-set and
//! the world table, so it does not matter *which* worker computes it or
//! *when*; and partial results are never folded in completion order —
//! each combine node keeps one slot per child and evaluates, only once
//! all slots are filled, exactly the sequential expression (`1 − Π (1 −
//! pᵢ)` in part order for ⊗, a Neumaier sum of `wᵢ · pᵢ` in branch order
//! with the missing-value tail last for ⊕). A shared-cache hit returns a
//! probability that is itself bit-identical to recomputation, so the
//! contract holds with or without a [`SharedDecompositionCache`]. The
//! differential and golden suites pin this under a `UPROB_WORKERS`
//! matrix in CI.
//!
//! # Budget accounting
//!
//! All workers of one run charge decomposition nodes against a single
//! shared atomic counter, so a [`DecompositionOptions::node_budget`]
//! bounds the run's **total** work: `BudgetExceeded` triggers at the
//! same amount of work regardless of the worker count (without a cache
//! the decomposition tree — and hence the abort-or-finish outcome — is
//! exactly the sequential one; cache hits can shift where the charges
//! fall, just as they do sequentially).

// uprob-lint: allow-file(panic-expect) -- scheduler discipline: lock `.expect`s propagate a panicked worker (a poisoned lock must abort the run, not limp on), and slot/root `.expect`s assert the combine-node accounting the determinism contract requires
// uprob-lint: allow-file(panic-index) -- every index is scheduler-internal: worker/victim ids are `% queues`-bounded, arena indices come from `alloc`, and combine slots are sized to the child count at allocation

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::thread;

use uprob_wsd::{NeumaierSum, WorldTable, WsSet};

use crate::cache::{CacheLookup, PendingEntry, SharedDecompositionCache};
use crate::confidence::{confidence_rec, confidence_with_cache};
use crate::decompose::{Decomposer, DecompositionOptions, DecompositionStep};
use crate::error::CoreError;
use crate::stats::{Confidence, DecompositionStats};
use crate::Result;

/// Default grain: ws-sets with fewer descriptors are solved inline by the
/// sequential fold instead of being scheduled, so the per-task overhead is
/// only paid where a subtree is plausibly worth stealing.
const DEFAULT_GRAIN: usize = 16;

/// Worker-count and granularity policy for the parallel exact paths
/// ([`confidence_parallel`] and the `_with_options` engine/query surface).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParallelOptions {
    workers: usize,
    grain: usize,
}

impl Default for ParallelOptions {
    /// The sequential policy: parallelism is opt-in.
    fn default() -> Self {
        ParallelOptions::sequential()
    }
}

impl ParallelOptions {
    /// A policy running `workers` worker threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        ParallelOptions {
            workers: workers.max(1),
            grain: DEFAULT_GRAIN,
        }
    }

    /// The sequential policy (one worker): every entry point degenerates
    /// to the plain sequential fold with zero scheduling overhead.
    pub fn sequential() -> Self {
        ParallelOptions::new(1)
    }

    /// One worker per available hardware thread
    /// ([`std::thread::available_parallelism`], 1 if unknown).
    pub fn auto() -> Self {
        ParallelOptions::new(available_workers())
    }

    /// Reads the worker count from the `UPROB_WORKERS` environment
    /// variable (the knob the CI determinism matrix turns). Unset or
    /// empty means [`ParallelOptions::auto`]; anything else must parse
    /// as a positive integer or the call fails with
    /// [`CoreError::InvalidWorkerSpec`] — a typoed matrix leg must fail
    /// loudly, not silently test the automatic policy.
    ///
    /// **Read-once semantics:** the variable is resolved exactly once per
    /// process, on the first call; every later call — including a
    /// malformed-spec failure — replays that first resolution. Re-reading
    /// on every call would race against `set_var` in multi-threaded
    /// programs and would let the effective worker count drift mid-run
    /// under the serving layer, where one `ProbDbService` hands the same
    /// [`ParallelOptions`] to every request. Code that needs a different
    /// worker count at runtime must construct it explicitly with
    /// [`ParallelOptions::new`] and pass it down.
    pub fn from_env() -> Result<Self> {
        static ENV_WORKERS: OnceLock<std::result::Result<usize, CoreError>> = OnceLock::new();
        let resolved = ENV_WORKERS.get_or_init(|| {
            let spec = std::env::var("UPROB_WORKERS").ok();
            workers_from_spec(spec.as_deref())
        });
        match resolved {
            Ok(workers) => Ok(ParallelOptions::new(*workers)),
            Err(error) => Err(error.clone()),
        }
    }

    /// Returns a copy with the given scheduling grain: ws-sets with fewer
    /// than `grain` descriptors are solved inline rather than scheduled.
    /// Tests over small random instances lower this so the scheduler is
    /// actually exercised; production callers keep the default.
    pub fn with_grain(mut self, grain: usize) -> Self {
        self.grain = grain;
        self
    }

    /// The number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The scheduling grain (minimum descriptor count for a scheduled task).
    pub fn grain(&self) -> usize {
        self.grain
    }

    /// Whether this policy runs on a single worker.
    pub fn is_sequential(&self) -> bool {
        self.workers <= 1
    }
}

/// The number of available hardware threads, 1 if it cannot be queried.
pub fn available_workers() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// Parses a `UPROB_WORKERS`-style spec. `None` and empty/whitespace
/// specs mean "choose automatically" ([`available_workers`]); any other
/// value must be a positive integer (surrounding whitespace tolerated)
/// or the spec is rejected as [`CoreError::InvalidWorkerSpec`].
fn workers_from_spec(spec: Option<&str>) -> Result<usize> {
    let Some(raw) = spec else {
        return Ok(available_workers());
    };
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Ok(available_workers());
    }
    match trimmed.parse::<usize>() {
        Ok(workers) if workers >= 1 => Ok(workers),
        _ => Err(CoreError::InvalidWorkerSpec { spec: raw.into() }),
    }
}

/// Sentinel parent index for the root task.
const ROOT: usize = usize::MAX;

/// One unit of schedulable work: compute the probability of `set` and
/// deliver it to slot `slot` of combine node `parent`.
struct Task {
    set: WsSet,
    depth: u64,
    parent: usize,
    slot: usize,
}

/// How a combine node folds its children — mirroring, slot for slot, the
/// arithmetic of the sequential `confidence_rec`.
enum CombineKind {
    /// ⊗: `1 − Π (1 − pᵢ)`, factors multiplied in part order.
    Product {
        /// One slot per part, filled as children resolve.
        factors: Vec<Option<f64>>,
    },
    /// ⊕: Neumaier sum of `wᵢ · pᵢ` in branch order. Zero-weight branches
    /// are never scheduled (the sequential fold skips them before
    /// recursing); when the eliminated variable has missing values and a
    /// non-empty tail, the tail is the last term with the summed missing
    /// weight.
    Sum {
        /// Branch weights, in canonical branch order.
        weights: Vec<f64>,
        /// One slot per branch, filled as children resolve.
        terms: Vec<Option<f64>>,
    },
}

impl CombineKind {
    fn set(&mut self, slot: usize, value: f64) {
        let slots = match self {
            CombineKind::Product { factors } => factors,
            CombineKind::Sum { terms, .. } => terms,
        };
        debug_assert!(slots[slot].is_none(), "combine slot delivered twice");
        slots[slot] = Some(value);
    }

    /// Folds the filled slots exactly as the sequential fold would.
    fn combine(&self) -> f64 {
        match self {
            CombineKind::Product { factors } => {
                let mut complement = 1.0;
                for factor in factors {
                    complement *= 1.0 - factor.expect("combine node resolved unfilled");
                }
                1.0 - complement
            }
            CombineKind::Sum { weights, terms } => {
                let mut total = NeumaierSum::new();
                for (weight, term) in weights.iter().zip(terms) {
                    total.add(weight * term.expect("combine node resolved unfilled"));
                }
                total.value()
            }
        }
    }
}

/// An unresolved inner node of the (virtual) ws-tree: where its own value
/// goes, how many children are still outstanding, and the pending cache
/// entry to fill once resolved.
struct CombineNode {
    parent: usize,
    slot: usize,
    remaining: usize,
    kind: CombineKind,
    cache_entry: Option<PendingEntry>,
}

/// Slab of combine nodes with a free-list: resolved nodes are recycled,
/// bounding the arena to the active frontier of the decomposition rather
/// than its full node count.
#[derive(Default)]
struct Arena {
    nodes: Vec<Option<CombineNode>>,
    free: Vec<usize>,
}

impl Arena {
    fn alloc(&mut self, node: CombineNode) -> usize {
        match self.free.pop() {
            Some(index) => {
                self.nodes[index] = Some(node);
                index
            }
            None => {
                self.nodes.push(Some(node));
                self.nodes.len() - 1
            }
        }
    }

    fn take(&mut self, index: usize) -> CombineNode {
        let node = self.nodes[index].take().expect("live combine node");
        self.free.push(index);
        node
    }
}

/// State shared by all workers of one parallel run.
struct Shared<'a> {
    queues: Vec<Mutex<VecDeque<Task>>>,
    arena: Mutex<Arena>,
    root: Mutex<Option<f64>>,
    done: AtomicBool,
    error: Mutex<Option<CoreError>>,
    cache: Option<&'a SharedDecompositionCache>,
    grain: usize,
}

impl Shared<'_> {
    /// Records the first error of the run and tells every worker to stop.
    /// Poison-tolerant on purpose: this is the containment path a
    /// panicking worker reports through, so it must stay usable even
    /// after another worker died while holding the error lock (the slot
    /// is a plain `Option` — there is no half-written state to observe).
    fn record_error(&self, error: CoreError) {
        let mut slot = self.error.lock().unwrap_or_else(PoisonError::into_inner);
        if slot.is_none() {
            *slot = Some(error);
        }
        self.done.store(true, Ordering::Release);
    }
}

/// Renders a `catch_unwind` payload to text, best effort: `&str` and
/// `String` payloads (what `panic!` produces) are returned verbatim,
/// anything else is summarized.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Delivers `value` into `(parent, slot)` and walks resolutions up the
/// arena: whichever worker fills a node's last slot folds it (in canonical
/// order), publishes the pending cache entry and continues with the
/// parent. The walk is iterative, so deep ws-trees never deepen the stack.
fn resolve(shared: &Shared<'_>, mut parent: usize, mut slot: usize, mut value: f64) {
    loop {
        if parent == ROOT {
            *shared.root.lock().expect("root lock poisoned") = Some(value);
            shared.done.store(true, Ordering::Release);
            return;
        }
        let finished = {
            let mut arena = shared.arena.lock().expect("arena lock poisoned");
            let node = arena.nodes[parent].as_mut().expect("live combine node");
            node.kind.set(slot, value);
            node.remaining -= 1;
            if node.remaining > 0 {
                return;
            }
            arena.take(parent)
        };
        value = finished.kind.combine();
        if let (Some(cache), Some(entry)) = (shared.cache, finished.cache_entry) {
            cache.insert(entry, value);
        }
        parent = finished.parent;
        slot = finished.slot;
    }
}

/// Resolves a task that needed no children, publishing its cache entry.
fn finish_leaf(
    shared: &Shared<'_>,
    parent: usize,
    slot: usize,
    value: f64,
    pending: Option<PendingEntry>,
) {
    if let (Some(cache), Some(entry)) = (shared.cache, pending) {
        cache.insert(entry, value);
    }
    resolve(shared, parent, slot, value);
}

/// Allocates the combine node for an expanded task and pushes its child
/// tasks onto the expanding worker's own deque — in reverse slot order, so
/// LIFO pops visit the children in the same depth-first canonical order as
/// the sequential recursion (thieves take from the other end: the oldest,
/// largest subtrees).
fn spawn_children(
    shared: &Shared<'_>,
    worker: usize,
    node: CombineNode,
    children: Vec<WsSet>,
    depth: u64,
) {
    debug_assert_eq!(node.remaining, children.len());
    let index = shared
        .arena
        .lock()
        .expect("arena lock poisoned")
        .alloc(node);
    let mut queue = shared.queues[worker].lock().expect("queue lock poisoned");
    for (child_slot, set) in children.into_iter().enumerate().rev() {
        queue.push_front(Task {
            set,
            depth: depth + 1,
            parent: index,
            slot: child_slot,
        });
    }
}

/// Executes one task: small sets are solved inline by the sequential fold
/// (same cache interaction, same arithmetic); larger sets take one
/// decomposition step, with the resulting subtrees scheduled as child
/// tasks behind a combine node. The cache-band check runs *before* the
/// step, exactly as in `confidence_rec`.
fn run_task(
    task: Task,
    worker: usize,
    shared: &Shared<'_>,
    decomposer: &mut Decomposer<'_>,
) -> Result<()> {
    let Task {
        set,
        depth,
        parent,
        slot,
    } = task;
    if set.len() < shared.grain {
        let probability = confidence_rec(&set, decomposer, depth, shared.cache)?;
        resolve(shared, parent, slot, probability);
        return Ok(());
    }
    let pending = match shared.cache {
        Some(cache) if SharedDecompositionCache::is_cacheable(&set) => match cache.lookup(&set) {
            CacheLookup::Hit(probability) => {
                decomposer.stats.cache_hits += 1;
                resolve(shared, parent, slot, probability);
                return Ok(());
            }
            CacheLookup::Miss(key) => {
                decomposer.stats.cache_misses += 1;
                Some(key)
            }
        },
        _ => None,
    };
    match decomposer.step(&set, depth)? {
        DecompositionStep::Empty => finish_leaf(shared, parent, slot, 0.0, pending),
        DecompositionStep::Universal => finish_leaf(shared, parent, slot, 1.0, pending),
        DecompositionStep::Partition(parts) => {
            let node = CombineNode {
                parent,
                slot,
                remaining: parts.len(),
                kind: CombineKind::Product {
                    factors: vec![None; parts.len()],
                },
                cache_entry: pending,
            };
            spawn_children(shared, worker, node, parts, depth);
        }
        DecompositionStep::Eliminate {
            var,
            branches,
            missing_values,
            tail,
        } => {
            let table = decomposer.table();
            let mut weights = Vec::with_capacity(branches.len() + 1);
            let mut children = Vec::with_capacity(branches.len() + 1);
            for (value, child) in branches {
                let weight = table.probability(var, value)?;
                if weight == 0.0 {
                    continue;
                }
                weights.push(weight);
                children.push(child);
            }
            if !missing_values.is_empty() && !tail.is_empty() {
                let mut missing_weight = NeumaierSum::new();
                for value in &missing_values {
                    missing_weight.add(table.probability(var, *value)?);
                }
                let missing_weight = missing_weight.value();
                if missing_weight > 0.0 {
                    weights.push(missing_weight);
                    children.push(tail);
                }
            }
            if children.is_empty() {
                // Every branch had zero weight: the sequential fold returns
                // the empty Neumaier sum.
                finish_leaf(shared, parent, slot, 0.0, pending);
            } else {
                let node = CombineNode {
                    parent,
                    slot,
                    remaining: children.len(),
                    kind: CombineKind::Sum {
                        weights,
                        terms: vec![None; children.len()],
                    },
                    cache_entry: pending,
                };
                spawn_children(shared, worker, node, children, depth);
            }
        }
    }
    Ok(())
}

/// Pops the worker's own newest task, or steals the oldest task of another
/// worker's deque.
fn next_task(shared: &Shared<'_>, worker: usize) -> Option<Task> {
    if let Some(task) = shared.queues[worker]
        .lock()
        .expect("queue lock poisoned")
        .pop_front()
    {
        return Some(task);
    }
    let queues = shared.queues.len();
    for offset in 1..queues {
        let victim = (worker + offset) % queues;
        if let Some(task) = shared.queues[victim]
            .lock()
            .expect("queue lock poisoned")
            .pop_back()
        {
            return Some(task);
        }
    }
    None
}

/// Test-only fault injection: panics inside the next scheduled task when
/// the tests have armed [`tests::INJECT_TASK_PANIC`] and the run uses the
/// sentinel grain (so concurrently running tests never trip it).
#[cfg(test)]
fn maybe_inject_panic(grain: usize) {
    if grain == tests::INJECTION_GRAIN && tests::INJECT_TASK_PANIC.swap(false, Ordering::SeqCst) {
        panic!("injected task panic");
    }
}

#[cfg(not(test))]
fn maybe_inject_panic(_grain: usize) {}

/// The worker main loop: drain tasks until the root resolves or a worker
/// reports an error; idle workers yield between steal attempts.
///
/// Each iteration runs under `catch_unwind`: a panic anywhere in task
/// execution (or in a steal attempt hitting a lock the panicking worker
/// poisoned) is converted into [`CoreError::WorkerPanicked`] and recorded,
/// which sets `done` and drains the scheduler. Without this containment a
/// panicking worker would never set `done`, the surviving workers would
/// spin forever, and `thread::scope` would deadlock the process.
fn worker_loop(
    worker: usize,
    shared: &Shared<'_>,
    table: &WorldTable,
    options: DecompositionOptions,
    nodes: &AtomicU64,
) -> DecompositionStats {
    let mut decomposer = Decomposer::with_shared_nodes(table, options, nodes);
    while !shared.done.load(Ordering::Acquire) {
        let step = catch_unwind(AssertUnwindSafe(|| {
            maybe_inject_panic(shared.grain);
            match next_task(shared, worker) {
                Some(task) => {
                    if let Err(error) = run_task(task, worker, shared, &mut decomposer) {
                        shared.record_error(error);
                    }
                    true
                }
                None => false,
            }
        }));
        match step {
            Ok(true) => {}
            Ok(false) => thread::yield_now(),
            Err(payload) => shared.record_error(CoreError::WorkerPanicked {
                message: panic_message(payload.as_ref()),
            }),
        }
    }
    decomposer.stats
}

/// Computes the exact probability of `set` on `parallel.workers()` work-
/// stealing worker threads, bit-identical to [`confidence_with_cache`]
/// for every worker count (see the module documentation for the contract
/// and the budget semantics). With one worker — or a set below the
/// scheduling grain — this *is* the sequential fold.
///
/// # Errors
///
/// Returns [`CoreError::BudgetExceeded`] if `options.node_budget` is set
/// and the run's total (cross-worker) node count exhausts it, and
/// [`CoreError::CacheTableMismatch`] if `cache` was first used with a
/// different world table.
pub fn confidence_parallel(
    set: &WsSet,
    table: &WorldTable,
    options: &DecompositionOptions,
    parallel: &ParallelOptions,
    cache: Option<&SharedDecompositionCache>,
) -> Result<Confidence> {
    if parallel.is_sequential() || set.len() < parallel.grain {
        return confidence_with_cache(set, table, options, cache);
    }
    if let Some(shared_cache) = cache {
        shared_cache.bind_table(table)?;
    }
    let workers = parallel.workers();
    let nodes = AtomicU64::new(0);
    let shared = Shared {
        queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
        arena: Mutex::new(Arena::default()),
        root: Mutex::new(None),
        done: AtomicBool::new(false),
        error: Mutex::new(None),
        cache,
        grain: parallel.grain,
    };
    shared.queues[0]
        .lock()
        .expect("queue lock poisoned")
        .push_front(Task {
            set: set.clone(),
            depth: 1,
            parent: ROOT,
            slot: 0,
        });
    let mut stats = DecompositionStats::default();
    thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|worker| {
                let shared = &shared;
                let nodes = &nodes;
                // uprob-lint: allow(det-taint) -- workers fill pre-assigned combine-node slots; the fold over the arena is by slot index, so completion order cannot reach the result bits (pinned by the 1/2/4/8-worker bit-identity matrix)
                scope.spawn(move || worker_loop(worker, shared, table, *options, nodes))
            })
            .collect();
        for handle in handles {
            stats.absorb(&handle.join().expect("worker thread must not panic"));
        }
    });
    // Poison-tolerant like `record_error`: the error slot must stay
    // readable even if the recording worker died while holding it.
    if let Some(error) = shared
        .error
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .take()
    {
        return Err(error);
    }
    let probability = shared
        .root
        .lock()
        .expect("root lock poisoned")
        .take()
        .expect("finished parallel run must resolve the root");
    Ok(Confidence { probability, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use uprob_wsd::{ValueIndex, VarId, WsDescriptor};

    /// Arms [`maybe_inject_panic`]: the next task of a run whose grain is
    /// [`INJECTION_GRAIN`] panics. The sentinel grain keeps concurrently
    /// running tests (which use grains 0 and 2) from consuming the flag.
    pub(super) static INJECT_TASK_PANIC: AtomicBool = AtomicBool::new(false);
    pub(super) const INJECTION_GRAIN: usize = 3;

    /// The world table and ws-set S of Figure 3 (P(S) = 0.7578).
    fn figure3() -> (WorldTable, WsSet) {
        let mut w = WorldTable::new();
        let x = w
            .add_variable("x", &[(1, 0.1), (2, 0.4), (3, 0.5)])
            .unwrap();
        let y = w.add_variable("y", &[(1, 0.2), (2, 0.8)]).unwrap();
        let z = w.add_variable("z", &[(1, 0.4), (2, 0.6)]).unwrap();
        let u = w.add_variable("u", &[(1, 0.7), (2, 0.3)]).unwrap();
        let v = w.add_variable("v", &[(1, 0.5), (2, 0.5)]).unwrap();
        let s = WsSet::from_descriptors(vec![
            WsDescriptor::from_pairs(&w, &[(x, 1)]).unwrap(),
            WsDescriptor::from_pairs(&w, &[(x, 2), (y, 1)]).unwrap(),
            WsDescriptor::from_pairs(&w, &[(x, 2), (z, 1)]).unwrap(),
            WsDescriptor::from_pairs(&w, &[(u, 1), (v, 1)]).unwrap(),
            WsDescriptor::from_pairs(&w, &[(u, 2)]).unwrap(),
        ]);
        (w, s)
    }

    /// A seeded random instance large enough to exercise the scheduler.
    fn random_instance(seed: u64) -> (WorldTable, WsSet) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut w = WorldTable::new();
        let num_vars = rng.random_range(6..=10usize);
        let vars: Vec<VarId> = (0..num_vars)
            .map(|i| {
                let domain = rng.random_range(2..=4usize);
                w.add_uniform(&format!("v{i}"), domain).unwrap()
            })
            .collect();
        let mut set = WsSet::empty();
        for _ in 0..rng.random_range(6..=14usize) {
            let mut d = WsDescriptor::empty();
            for _ in 0..rng.random_range(1..=3usize) {
                let var = vars[rng.random_range(0..num_vars)];
                let domain = w.domain_size(var).unwrap();
                let _ = d.assign(var, ValueIndex(rng.random_range(0..domain) as u16));
            }
            set.push(d);
        }
        (w, set)
    }

    #[test]
    fn parallel_is_bit_identical_to_sequential_on_figure3() {
        let (w, s) = figure3();
        for options in [
            DecompositionOptions::indve_minlog(),
            DecompositionOptions::indve_minmax(),
            DecompositionOptions::ve_minlog(),
        ] {
            let sequential = confidence_with_cache(&s, &w, &options, None).unwrap();
            for workers in [2, 3, 8] {
                let parallel = ParallelOptions::new(workers).with_grain(2);
                let got = confidence_parallel(&s, &w, &options, &parallel, None).unwrap();
                assert_eq!(
                    got.probability.to_bits(),
                    sequential.probability.to_bits(),
                    "{options:?} with {workers} workers: {} vs {}",
                    got.probability,
                    sequential.probability
                );
                // Without a cache the decomposition tree is the sequential
                // one, so the merged counters match exactly.
                assert_eq!(got.stats, sequential.stats);
            }
        }
    }

    #[test]
    fn parallel_is_bit_identical_to_sequential_on_random_sets() {
        for seed in 0..16u64 {
            let (w, s) = random_instance(seed);
            for options in [
                DecompositionOptions::indve_minlog(),
                DecompositionOptions::ve_minlog(),
            ] {
                let sequential = confidence_with_cache(&s, &w, &options, None).unwrap();
                for workers in [2, 4, 8] {
                    let parallel = ParallelOptions::new(workers).with_grain(2);
                    let got = confidence_parallel(&s, &w, &options, &parallel, None).unwrap();
                    assert_eq!(
                        got.probability.to_bits(),
                        sequential.probability.to_bits(),
                        "seed {seed}, {options:?}, {workers} workers"
                    );
                    assert_eq!(got.stats, sequential.stats, "seed {seed}");
                }
            }
        }
    }

    #[test]
    fn parallel_choice_fold_survives_many_branch_drift() {
        // The ⊕-combine must keep the compensated branch-order sum: one
        // 0.5 head, 29998 half-ulp alternatives and a balancing tail; the
        // singleton cover has probability exactly 1.0.
        let tiny = 2f64.powi(-54);
        let tiny_count = 29_998usize;
        let mut alternatives: Vec<(i64, f64)> = vec![(0, 0.5)];
        alternatives.extend((0..tiny_count).map(|i| (1 + i as i64, tiny)));
        alternatives.push((1 + tiny_count as i64, 0.5 - tiny_count as f64 * tiny));
        let mut w = WorldTable::new();
        let x = w.add_variable("x", &alternatives).unwrap();
        let set: WsSet = (0..alternatives.len())
            .map(|v| {
                WsDescriptor::from_assignments([uprob_wsd::value::Assignment::new(
                    x,
                    ValueIndex(v as u16),
                )])
                .unwrap()
            })
            .collect();
        let options = DecompositionOptions::ve_minlog();
        let sequential = confidence_with_cache(&set, &w, &options, None).unwrap();
        let parallel = ParallelOptions::new(4).with_grain(2);
        let got = confidence_parallel(&set, &w, &options, &parallel, None).unwrap();
        assert_eq!(got.probability.to_bits(), sequential.probability.to_bits());
        assert!(
            (got.probability - 1.0).abs() < 1e-13,
            "parallel ⊕-fold drifted: {:e}",
            (got.probability - 1.0).abs()
        );
    }

    #[test]
    fn parallel_budget_aborts_like_sequential_and_ample_budget_matches() {
        let (w, s) = figure3();
        let tight = DecompositionOptions::indve_minlog().with_budget(2);
        for workers in [2, 4] {
            let parallel = ParallelOptions::new(workers).with_grain(2);
            let err = confidence_parallel(&s, &w, &tight, &parallel, None).unwrap_err();
            assert!(matches!(err, CoreError::BudgetExceeded { budget: 2 }));
        }
        let ample = DecompositionOptions::indve_minlog().with_budget(1_000_000);
        let sequential = confidence_with_cache(&s, &w, &ample, None).unwrap();
        for workers in [2, 4] {
            let parallel = ParallelOptions::new(workers).with_grain(2);
            let got = confidence_parallel(&s, &w, &ample, &parallel, None).unwrap();
            assert_eq!(got.probability.to_bits(), sequential.probability.to_bits());
        }
    }

    #[test]
    fn parallel_populates_the_shared_cache_for_sequential_reuse() {
        let (w, s) = figure3();
        let options = DecompositionOptions::indve_minlog();
        let cache = SharedDecompositionCache::new();
        let parallel = ParallelOptions::new(4).with_grain(2);
        let cold = confidence_parallel(&s, &w, &options, &parallel, Some(&cache)).unwrap();
        let plain = confidence_with_cache(&s, &w, &options, None).unwrap();
        assert_eq!(cold.probability.to_bits(), plain.probability.to_bits());
        assert!(cold.stats.cache_misses > 0);
        // A warm sequential run over the same set answers from the cache.
        let warm = confidence_with_cache(&s, &w, &options, Some(&cache)).unwrap();
        assert_eq!(warm.probability.to_bits(), cold.probability.to_bits());
        assert_eq!(warm.stats.cache_hits, 1);
        assert_eq!(warm.stats.total_nodes(), 0);
        // And a warm parallel run hits it too.
        let warm_parallel = confidence_parallel(&s, &w, &options, &parallel, Some(&cache)).unwrap();
        assert_eq!(
            warm_parallel.probability.to_bits(),
            cold.probability.to_bits()
        );
        assert!(warm_parallel.stats.cache_hits >= 1);
    }

    #[test]
    fn parallel_with_cache_is_bit_identical_on_random_sets() {
        for seed in 16..28u64 {
            let (w, s) = random_instance(seed);
            let options = DecompositionOptions::indve_minlog();
            let sequential = confidence_with_cache(&s, &w, &options, None).unwrap();
            for workers in [2, 8] {
                let cache = SharedDecompositionCache::new();
                let parallel = ParallelOptions::new(workers).with_grain(2);
                let got = confidence_parallel(&s, &w, &options, &parallel, Some(&cache)).unwrap();
                assert_eq!(
                    got.probability.to_bits(),
                    sequential.probability.to_bits(),
                    "seed {seed}, {workers} workers (cached)"
                );
            }
        }
    }

    #[test]
    fn trivial_sets_and_single_worker_degenerate_to_sequential() {
        let (w, s) = figure3();
        let options = DecompositionOptions::indve_minlog();
        let sequential = confidence_with_cache(&s, &w, &options, None).unwrap();
        // One worker: the scheduler is bypassed entirely.
        let one =
            confidence_parallel(&s, &w, &options, &ParallelOptions::sequential(), None).unwrap();
        assert_eq!(one.probability.to_bits(), sequential.probability.to_bits());
        // A set below the grain: likewise.
        let coarse = ParallelOptions::new(4); // default grain 16 > |S| = 5
        let small = confidence_parallel(&s, &w, &options, &coarse, None).unwrap();
        assert_eq!(
            small.probability.to_bits(),
            sequential.probability.to_bits()
        );
        // Empty and universal sets under the scheduler-less path.
        let parallel = ParallelOptions::new(4).with_grain(0);
        assert_eq!(
            confidence_parallel(&WsSet::empty(), &w, &options, &parallel, None)
                .unwrap()
                .probability,
            0.0
        );
        assert_eq!(
            confidence_parallel(&WsSet::universal(), &w, &options, &parallel, None)
                .unwrap()
                .probability,
            1.0
        );
    }

    #[test]
    fn parallel_options_policies() {
        assert!(ParallelOptions::default().is_sequential());
        assert_eq!(ParallelOptions::new(0).workers(), 1);
        assert_eq!(ParallelOptions::new(4).workers(), 4);
        assert!(!ParallelOptions::new(4).is_sequential());
        assert_eq!(ParallelOptions::new(4).grain(), DEFAULT_GRAIN);
        assert_eq!(ParallelOptions::new(4).with_grain(2).grain(), 2);
        assert!(ParallelOptions::auto().workers() >= 1);
    }

    #[test]
    fn injected_worker_panic_is_contained_and_later_runs_succeed() {
        let (w, s) = figure3();
        let options = DecompositionOptions::indve_minlog();
        let parallel = ParallelOptions::new(4).with_grain(INJECTION_GRAIN);
        INJECT_TASK_PANIC.store(true, Ordering::SeqCst);
        let err = confidence_parallel(&s, &w, &options, &parallel, None).unwrap_err();
        match err {
            CoreError::WorkerPanicked { ref message } => {
                assert!(message.contains("injected"), "unexpected payload: {err}");
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
        assert!(
            !INJECT_TASK_PANIC.load(Ordering::SeqCst),
            "the injection must have been consumed"
        );
        // Containment: the failed run owned the panic; the same call made
        // afterwards (fresh scheduler state) succeeds bit-identically.
        let sequential = confidence_with_cache(&s, &w, &options, None).unwrap();
        let got = confidence_parallel(&s, &w, &options, &parallel, None).unwrap();
        assert_eq!(got.probability.to_bits(), sequential.probability.to_bits());
    }

    #[test]
    fn from_env_resolves_once_per_process() {
        // Whatever the environment says, two calls agree: the spec is
        // resolved into a process-wide OnceLock on the first call.
        let first = ParallelOptions::from_env();
        let second = ParallelOptions::from_env();
        assert_eq!(first, second);
    }

    #[test]
    fn panic_message_renders_common_payloads() {
        let static_payload: Box<dyn std::any::Any + Send> = Box::new("boom");
        assert_eq!(panic_message(static_payload.as_ref()), "boom");
        let string_payload: Box<dyn std::any::Any + Send> = Box::new(String::from("formatted"));
        assert_eq!(panic_message(string_payload.as_ref()), "formatted");
        let odd_payload: Box<dyn std::any::Any + Send> = Box::new(7u32);
        assert_eq!(
            panic_message(odd_payload.as_ref()),
            "non-string panic payload"
        );
    }

    #[test]
    fn workers_spec_parsing() {
        assert_eq!(workers_from_spec(Some("4")).unwrap(), 4);
        assert_eq!(workers_from_spec(Some(" 2 ")).unwrap(), 2);
        assert_eq!(workers_from_spec(Some("1")).unwrap(), 1);
        let auto = available_workers();
        assert_eq!(workers_from_spec(None).unwrap(), auto);
        assert_eq!(workers_from_spec(Some("")).unwrap(), auto);
        assert_eq!(workers_from_spec(Some("   ")).unwrap(), auto);
        assert_eq!(workers_from_spec(Some("\t\n")).unwrap(), auto);
    }

    #[test]
    fn workers_spec_rejects_malformed_values() {
        for bad in [
            "0",
            " 0 ",
            "many",
            "-1",
            "2.5",
            "4 workers",
            "1_0",
            "+",
            "0x4",
        ] {
            let err = workers_from_spec(Some(bad)).unwrap_err();
            match err {
                CoreError::InvalidWorkerSpec { ref spec } => assert_eq!(spec, bad),
                other => panic!("expected InvalidWorkerSpec for {bad:?}, got {other:?}"),
            }
            assert!(err.to_string().contains("positive integer"), "{err}");
        }
        // Overflow is malformed too, not a silent clamp.
        assert!(matches!(
            workers_from_spec(Some("99999999999999999999999999")),
            Err(CoreError::InvalidWorkerSpec { .. })
        ));
    }
}
