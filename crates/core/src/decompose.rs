//! The Davis–Putnam-style decomposition of ws-sets (Section 4.1, Figure 4).
//!
//! `ComputeTree` translates a ws-set into a ws-tree by repeatedly applying
//! one of two rules:
//!
//! * **independent partitioning** — split the ws-set into connected
//!   components of the variable co-occurrence graph and combine them with a
//!   ⊗ node;
//! * **variable elimination** — choose a variable `x` (using a
//!   [`VariableHeuristic`]), split the set into the descriptors consistent
//!   with each assignment `x → i` (each unioned with the descriptors `T`
//!   not mentioning `x`) and combine the recursive translations with a
//!   ⊕ node.
//!
//! The same recursion is reused, without materialising the tree, by exact
//! confidence computation ([`crate::confidence`]) and by conditioning
//! ([`crate::conditioning`]): they *fold* probability computation or
//! database rewriting over the decomposition, which is exactly the
//! `ComputeTree ∘ P` composition described in Section 4.3.

use std::sync::atomic::{AtomicU64, Ordering};

use uprob_wsd::{ValueIndex, VarId, WorldTable, WsSet};

use crate::error::CoreError;
use crate::heuristics::{choose_variable, VariableHeuristic};
use crate::stats::DecompositionStats;
use crate::wstree::WsTree;
use crate::Result;

/// Which decomposition rules are enabled.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DecompositionMethod {
    /// Independent partitioning *and* variable elimination (the paper's
    /// INDVE algorithm).
    #[default]
    IndVe,
    /// Variable elimination only (the paper's VE algorithm).
    VeOnly,
}

impl DecompositionMethod {
    /// Short name used by the benchmark harness.
    pub fn name(self) -> &'static str {
        match self {
            DecompositionMethod::IndVe => "indve",
            DecompositionMethod::VeOnly => "ve",
        }
    }
}

/// Options controlling the decomposition.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct DecompositionOptions {
    /// Which rules may be applied.
    pub method: DecompositionMethod,
    /// Variable-ordering heuristic for variable elimination.
    pub heuristic: VariableHeuristic,
    /// Optional budget on the number of decomposition nodes; exceeding it
    /// aborts with [`CoreError::BudgetExceeded`]. Used by the benchmark
    /// harness to emulate the per-run timeouts of the paper.
    pub node_budget: Option<u64>,
}

impl DecompositionOptions {
    /// INDVE with the minlog heuristic (the paper's default configuration).
    pub fn indve_minlog() -> Self {
        DecompositionOptions {
            method: DecompositionMethod::IndVe,
            heuristic: VariableHeuristic::MinLog,
            node_budget: None,
        }
    }

    /// INDVE with the minmax heuristic.
    pub fn indve_minmax() -> Self {
        DecompositionOptions {
            heuristic: VariableHeuristic::MinMax,
            ..Self::indve_minlog()
        }
    }

    /// Variable elimination only, with the minlog heuristic.
    pub fn ve_minlog() -> Self {
        DecompositionOptions {
            method: DecompositionMethod::VeOnly,
            ..Self::indve_minlog()
        }
    }

    /// Returns a copy with the given node budget.
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.node_budget = Some(budget);
        self
    }
}

/// One step of the decomposition: what `ComputeTree` would do at this node.
#[derive(Clone, Debug)]
pub enum DecompositionStep {
    /// The ws-set is empty: the node is `⊥`.
    Empty,
    /// The ws-set contains the nullary descriptor: the node is the `∅` leaf.
    Universal,
    /// Independent partitioning applies: the node is a ⊗ over these parts.
    Partition(Vec<WsSet>),
    /// Variable elimination on `var`.
    Eliminate {
        /// The eliminated variable.
        var: VarId,
        /// For every value of `var` occurring in the set: the child ws-set
        /// `S_{x→i} ∪ T` (descriptors with `x → i`, the assignment removed,
        /// unioned with the descriptors not mentioning `x`).
        branches: Vec<(ValueIndex, WsSet)>,
        /// Values of `var` not occurring in the set. Their child ws-set is
        /// `T` (translated only once, as noted in Figure 4).
        missing_values: Vec<ValueIndex>,
        /// The descriptors of the input not mentioning `var`.
        tail: WsSet,
    },
}

/// Shared state of one decomposition run (node budget and statistics).
///
/// The node counter is either run-local (the sequential fold) or a shared
/// atomic that several workers of one parallel run charge together, so a
/// node budget bounds the run's **total** work no matter how many workers
/// split it (see [`crate::parallel`]).
pub(crate) struct Decomposer<'a> {
    table: &'a WorldTable,
    options: DecompositionOptions,
    pub(crate) stats: DecompositionStats,
    nodes: u64,
    shared_nodes: Option<&'a AtomicU64>,
}

impl<'a> Decomposer<'a> {
    pub(crate) fn new(table: &'a WorldTable, options: DecompositionOptions) -> Self {
        Decomposer {
            table,
            options,
            stats: DecompositionStats::default(),
            nodes: 0,
            shared_nodes: None,
        }
    }

    /// A decomposer charging decomposition nodes against `shared_nodes`,
    /// the counter all workers of one parallel run have in common.
    pub(crate) fn with_shared_nodes(
        table: &'a WorldTable,
        options: DecompositionOptions,
        shared_nodes: &'a AtomicU64,
    ) -> Self {
        Decomposer {
            shared_nodes: Some(shared_nodes),
            ..Decomposer::new(table, options)
        }
    }

    pub(crate) fn table(&self) -> &'a WorldTable {
        self.table
    }

    fn charge_node(&mut self) -> Result<()> {
        let total = match self.shared_nodes {
            Some(shared) => shared.fetch_add(1, Ordering::Relaxed).saturating_add(1),
            None => {
                self.nodes += 1;
                self.nodes
            }
        };
        if let Some(budget) = self.options.node_budget {
            if total > budget {
                return Err(CoreError::BudgetExceeded { budget });
            }
        }
        Ok(())
    }

    /// Decides what `ComputeTree` does with `set` at recursion depth
    /// `depth`, updating the statistics.
    pub(crate) fn step(&mut self, set: &WsSet, depth: u64) -> Result<DecompositionStep> {
        self.charge_node()?;
        self.stats.max_depth = self.stats.max_depth.max(depth);
        if set.is_empty() {
            self.stats.bottoms += 1;
            return Ok(DecompositionStep::Empty);
        }
        if set.contains_universal() {
            self.stats.leaves += 1;
            return Ok(DecompositionStep::Universal);
        }
        if self.options.method == DecompositionMethod::IndVe {
            let parts = set.independent_partition();
            if parts.len() > 1 {
                self.stats.independent_nodes += 1;
                return Ok(DecompositionStep::Partition(parts));
            }
        }
        let var = choose_variable(set, self.table, self.options.heuristic)
            // uprob-lint: allow(panic-expect) -- the empty and universal cases return earlier in this function
            .expect("a non-empty, non-universal ws-set mentions at least one variable");
        self.stats.choice_nodes += 1;
        self.stats.variable_eliminations += 1;
        let (branches, missing_values, tail) = eliminate_variable(set, var, self.table);
        self.stats.branches += branches.len() as u64;
        Ok(DecompositionStep::Eliminate {
            var,
            branches,
            missing_values,
            tail,
        })
    }
}

/// Splits `set` by the assignments of `var` (the variable-elimination rule
/// of Figure 4). Returns the child ws-set for every occurring value
/// (`S_{x→i} ∪ T`, with the `x → i` assignment stripped), the values of
/// `var` that do not occur, and the tail `T`.
pub fn eliminate_variable(
    set: &WsSet,
    var: VarId,
    table: &WorldTable,
) -> (Vec<(ValueIndex, WsSet)>, Vec<ValueIndex>, WsSet) {
    let domain_size = table
        .domain_size(var)
        // uprob-lint: allow(panic-expect) -- var was chosen from this set's variables over the same table
        .expect("eliminated variable must belong to the world table");
    let mut tail = WsSet::empty();
    // Children indexed by value; only materialised for occurring values.
    let mut by_value: Vec<Option<WsSet>> = vec![None; domain_size];
    for descriptor in set.iter() {
        match descriptor.get(var) {
            None => tail.push(descriptor.clone()),
            Some(value) => {
                // uprob-lint: allow(panic-index) -- by_value has domain_size slots; value indexes the same domain
                by_value[value.index()]
                    .get_or_insert_with(WsSet::empty)
                    .push(descriptor.without(var));
            }
        }
    }
    let mut branches = Vec::new();
    let mut missing_values = Vec::new();
    for (index, slot) in by_value.into_iter().enumerate() {
        let value = ValueIndex(index as u16);
        match slot {
            Some(mut child) => {
                for d in tail.iter() {
                    child.push(d.clone());
                }
                branches.push((value, child));
            }
            None => missing_values.push(value),
        }
    }
    (branches, missing_values, tail)
}

/// Materialises the ws-tree of `ComputeTree(set)` (Figure 4).
///
/// Exact confidence computation and conditioning do **not** need the
/// materialised tree (they fold over the same recursion); this function is
/// useful for inspection, testing and the knowledge-compilation examples.
///
/// # Errors
///
/// Returns [`CoreError::BudgetExceeded`] if a node budget is configured and
/// exhausted.
pub fn build_tree(
    set: &WsSet,
    table: &WorldTable,
    options: &DecompositionOptions,
) -> Result<(WsTree, DecompositionStats)> {
    let mut decomposer = Decomposer::new(table, *options);
    let tree = build_rec(set, &mut decomposer, 1)?;
    Ok((tree, decomposer.stats))
}

fn build_rec(set: &WsSet, decomposer: &mut Decomposer<'_>, depth: u64) -> Result<WsTree> {
    match decomposer.step(set, depth)? {
        DecompositionStep::Empty => Ok(WsTree::Bottom),
        DecompositionStep::Universal => Ok(WsTree::Leaf),
        DecompositionStep::Partition(parts) => {
            let children = parts
                .iter()
                .map(|part| build_rec(part, decomposer, depth + 1))
                .collect::<Result<Vec<_>>>()?;
            Ok(WsTree::Independent(children))
        }
        DecompositionStep::Eliminate {
            var,
            branches,
            missing_values,
            tail,
        } => {
            let mut tree_branches = Vec::with_capacity(branches.len() + missing_values.len());
            for (value, child_set) in &branches {
                let child = build_rec(child_set, decomposer, depth + 1)?;
                tree_branches.push((*value, child));
            }
            // Branches for values that do not occur in the set: their child
            // is the translation of T, computed once and shared (cloned).
            if !missing_values.is_empty() && !tail.is_empty() {
                let tail_tree = build_rec(&tail, decomposer, depth + 1)?;
                for value in missing_values {
                    tree_branches.push((value, tail_tree.clone()));
                }
            }
            Ok(WsTree::Choice {
                var,
                branches: tree_branches,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uprob_wsd::WsDescriptor;

    /// The world table and ws-set S of Figure 3.
    fn figure3() -> (WorldTable, [VarId; 5], WsSet) {
        let mut w = WorldTable::new();
        let x = w
            .add_variable("x", &[(1, 0.1), (2, 0.4), (3, 0.5)])
            .unwrap();
        let y = w.add_variable("y", &[(1, 0.2), (2, 0.8)]).unwrap();
        let z = w.add_variable("z", &[(1, 0.4), (2, 0.6)]).unwrap();
        let u = w.add_variable("u", &[(1, 0.7), (2, 0.3)]).unwrap();
        let v = w.add_variable("v", &[(1, 0.5), (2, 0.5)]).unwrap();
        let s = WsSet::from_descriptors(vec![
            WsDescriptor::from_pairs(&w, &[(x, 1)]).unwrap(),
            WsDescriptor::from_pairs(&w, &[(x, 2), (y, 1)]).unwrap(),
            WsDescriptor::from_pairs(&w, &[(x, 2), (z, 1)]).unwrap(),
            WsDescriptor::from_pairs(&w, &[(u, 1), (v, 1)]).unwrap(),
            WsDescriptor::from_pairs(&w, &[(u, 2)]).unwrap(),
        ]);
        (w, [x, y, z, u, v], s)
    }

    #[test]
    fn eliminate_variable_splits_by_value() {
        let (w, [x, ..], s) = figure3();
        let (branches, missing, tail) = eliminate_variable(&s, x, &w);
        // x occurs with values 1 and 2; value 3 is missing.
        assert_eq!(branches.len(), 2);
        assert_eq!(missing, vec![ValueIndex(2)]);
        // T consists of the two descriptors over u and v.
        assert_eq!(tail.len(), 2);
        // Branch x -> 1 contains the nullary descriptor plus T.
        let b1 = &branches[0].1;
        assert_eq!(b1.len(), 3);
        assert!(b1.contains_universal());
        // Branch x -> 2 contains {y -> 1}, {z -> 1} plus T.
        let b2 = &branches[1].1;
        assert_eq!(b2.len(), 4);
        assert!(!b2.contains_universal());
    }

    #[test]
    fn build_tree_produces_a_valid_equivalent_tree() {
        let (w, _, s) = figure3();
        for options in [
            DecompositionOptions::indve_minlog(),
            DecompositionOptions::indve_minmax(),
            DecompositionOptions::ve_minlog(),
            DecompositionOptions {
                heuristic: VariableHeuristic::FirstVariable,
                ..Default::default()
            },
        ] {
            let (tree, stats) = build_tree(&s, &w, &options).unwrap();
            assert!(tree.validate(&w).is_ok(), "invalid tree for {options:?}");
            assert!(
                tree.to_ws_set().is_equivalent_by_enumeration(&s, &w),
                "tree does not represent S for {options:?}"
            );
            assert!(stats.total_nodes() > 0);
        }
    }

    #[test]
    fn indve_uses_independent_partitioning_on_figure3() {
        let (w, _, s) = figure3();
        let (tree, stats) = build_tree(&s, &w, &DecompositionOptions::indve_minlog()).unwrap();
        assert!(stats.independent_nodes >= 1);
        assert!(matches!(tree, WsTree::Independent(_)));
        // VE-only never creates ⊗ nodes.
        let (_, ve_stats) = build_tree(&s, &w, &DecompositionOptions::ve_minlog()).unwrap();
        assert_eq!(ve_stats.independent_nodes, 0);
    }

    #[test]
    fn empty_and_universal_sets() {
        let (w, _, _) = figure3();
        let options = DecompositionOptions::default();
        let (tree, stats) = build_tree(&WsSet::empty(), &w, &options).unwrap();
        assert!(tree.is_bottom());
        assert_eq!(stats.bottoms, 1);
        let (tree, stats) = build_tree(&WsSet::universal(), &w, &options).unwrap();
        assert_eq!(tree, WsTree::Leaf);
        assert_eq!(stats.leaves, 1);
    }

    #[test]
    fn node_budget_aborts_large_decompositions() {
        let (w, _, s) = figure3();
        let options = DecompositionOptions::indve_minlog().with_budget(2);
        let err = build_tree(&s, &w, &options).unwrap_err();
        assert!(matches!(err, CoreError::BudgetExceeded { budget: 2 }));
    }

    #[test]
    fn missing_assignments_with_nonempty_tail_keep_semantics() {
        // S over x (domain 3) where only x -> 1 occurs, plus an independent
        // descriptor over y that forms the tail when eliminating x.
        let mut w = WorldTable::new();
        let x = w.add_uniform("x", 3).unwrap();
        let y = w.add_uniform("y", 2).unwrap();
        let s = WsSet::from_descriptors(vec![
            WsDescriptor::from_pairs(&w, &[(x, 0), (y, 0)]).unwrap(),
            WsDescriptor::from_pairs(&w, &[(y, 1)]).unwrap(),
        ]);
        // Force VE so the tail/missing-value logic is exercised.
        let (tree, _) = build_tree(&s, &w, &DecompositionOptions::ve_minlog()).unwrap();
        assert!(tree.validate(&w).is_ok());
        assert!(tree.to_ws_set().is_equivalent_by_enumeration(&s, &w));
    }

    #[test]
    fn method_names() {
        assert_eq!(DecompositionMethod::IndVe.name(), "indve");
        assert_eq!(DecompositionMethod::VeOnly.name(), "ve");
    }
}
