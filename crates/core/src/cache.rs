//! The shared decomposition cache: hash-consed ws-set memoization.
//!
//! Exact confidence computation decomposes ws-sets recursively, and the same
//! sub-ws-set recurs constantly: the tail `T` of a variable elimination is
//! revisited in nested contexts, independent components reappear across
//! branches, and the distinct tuples of one query answer share rows with
//! each other and with the answer-level Boolean query. A
//! [`DecompositionCache`] memoizes the probability of every canonical
//! sub-ws-set it sees, so each distinct sub-problem is solved once per
//! database instead of once per occurrence.
//!
//! Keys are built by the hash-consing machinery of `uprob-wsd`
//! ([`DescriptorInterner`] / [`CanonicalSetKey`]): descriptors are interned
//! to dense `u32` ids and a ws-set's key is the sorted, deduplicated id
//! sequence. Equal keys imply equal descriptor sets and therefore equal
//! world-sets, so a cached probability is always sound to reuse. The
//! canonicalisation is purely syntactic (no absorption), so semantically
//! equal but syntactically different sets occupy separate entries — a space
//! trade-off, never a correctness one.
//!
//! # Thread safety
//!
//! [`SharedDecompositionCache`] wraps the cache in a [`Mutex`] so that the
//! batch confidence workers of `uprob-query` (spawned with
//! `std::thread::scope`) can share one cache by reference. Every lookup and
//! insert takes the lock for the duration of one hash-map operation only;
//! probabilities of a ws-set are deterministic, so two workers racing to
//! insert the same key write the same value (the second insert is a no-op)
//! and no worker can observe a wrong entry. The lock is intentionally
//! coarse: correctness first, sharding later (see `DESIGN.md`).
//!
//! Shard access is **poison-tolerant**: a worker that panics while holding
//! a shard lock (contained by the scheduler or the serving layer) must not
//! take every later request down with it. Recovering the guard is sound
//! here because every critical section is one hash-map/interner operation
//! that either completes or leaves the map untouched — `lookup` only reads
//! (its scratch buffer is left valid by `mem::take`), and `insert` is a
//! single first-write-wins entry insertion — and memoized values are pure
//! functions of their keys, so a recovered shard can never serve a wrong
//! probability.

use std::collections::hash_map::Entry;
use std::hash::{Hash, Hasher};
use std::sync::{Mutex, MutexGuard, PoisonError};

use uprob_wsd::fast_hash::FxHasher;
use uprob_wsd::{
    CanonicalSetKey, DescriptorInterner, FxHashMap, VarId, WorldTable, WsDescriptor, WsSet,
};

/// Ws-sets larger than this are decomposed without consulting the cache.
///
/// Canonicalising a set costs one hash per descriptor; for the very large
/// outer sets of a decomposition (which almost never recur — reuse lives in
/// the small independent components and elimination tails) that overhead
/// exceeds the expected savings. Sub-sets at or below this size are where
/// sharing actually happens, and their keys are cheap.
pub const MAX_CACHED_SET_LEN: usize = 64;

/// A pending cache entry: the canonical key of a missed set together with
/// the shard that produced it (keys are only meaningful within one shard's
/// interner).
#[derive(Debug)]
pub struct PendingEntry {
    shard: usize,
    key: CanonicalSetKey,
}

/// Outcome of a cache lookup: either a memoized probability, or the
/// pending entry under which the caller should insert its result.
#[derive(Debug)]
pub enum CacheLookup {
    /// The set was solved before; reuse this probability.
    Hit(f64),
    /// The set is new; compute it and call
    /// [`SharedDecompositionCache::insert`] with this pending entry.
    Miss(PendingEntry),
}

/// Aggregate counters of one cache (across all runs that shared it).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the memo table.
    pub hits: u64,
    /// Lookups that missed (and were subsequently computed and inserted).
    pub misses: u64,
    /// Number of memoized ws-set probabilities.
    pub entries: u64,
    /// Number of distinct descriptors interned.
    pub interned_descriptors: u64,
    /// Entries carried forward from a predecessor cache by
    /// [`SharedDecompositionCache::inherit_from`].
    pub inherited_entries: u64,
    /// Hits answered from an inherited (rather than locally computed)
    /// entry.
    pub inherited_hits: u64,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (0 if none were made).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

/// One memoized probability together with its provenance: locally computed
/// or carried forward from a predecessor cache.
#[derive(Clone, Copy, Debug, PartialEq)]
struct MemoEntry {
    probability: f64,
    inherited: bool,
}

/// The single-threaded core of one cache shard: an interner plus the
/// probability memo table and hit/miss counters.
#[derive(Debug, Default)]
pub struct DecompositionCache {
    interner: DescriptorInterner,
    probabilities: FxHashMap<CanonicalSetKey, MemoEntry>,
    /// Reusable id buffer so hit lookups allocate nothing.
    scratch: Vec<u32>,
    hits: u64,
    misses: u64,
    inherited_entries: u64,
    inherited_hits: u64,
}

impl DecompositionCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        DecompositionCache::default()
    }

    /// Looks up the probability of `set`, counting the hit or miss.
    pub fn lookup(&mut self, set: &WsSet) -> Result<f64, CanonicalSetKey> {
        let mut ids = std::mem::take(&mut self.scratch);
        self.interner.canonical_ids(set, &mut ids);
        // Probe through Borrow<[u32]> — no key allocation on the hit path.
        let result = match self.probabilities.get(ids.as_slice()) {
            Some(&entry) => {
                self.hits += 1;
                if entry.inherited {
                    self.inherited_hits += 1;
                }
                Ok(entry.probability)
            }
            None => {
                self.misses += 1;
                Err(CanonicalSetKey::from_sorted_ids(&ids))
            }
        };
        self.scratch = ids;
        result
    }

    /// Memoizes the probability of the set behind `key`. The first write
    /// wins; concurrent writers always carry the same value.
    pub fn insert(&mut self, key: CanonicalSetKey, probability: f64) {
        if let Entry::Vacant(slot) = self.probabilities.entry(key) {
            slot.insert(MemoEntry {
                probability,
                inherited: false,
            });
        }
    }

    /// Non-counting presence probe (tests and diagnostics): the memoized
    /// probability of `set`, if present, without perturbing the hit/miss
    /// counters.
    pub fn probe(&mut self, set: &WsSet) -> Option<f64> {
        let mut ids = std::mem::take(&mut self.scratch);
        self.interner.canonical_ids(set, &mut ids);
        let result = self
            .probabilities
            .get(ids.as_slice())
            .map(|e| e.probability);
        self.scratch = ids;
        result
    }

    /// Memoizes an entry carried forward from a predecessor cache. Private
    /// to the inheritance path: the only route here is
    /// [`SharedDecompositionCache::inherit_from`], which performs the
    /// descriptor-disjointness/eligibility check (enforced by the
    /// `cache-inherit` lint rule).
    fn insert_inherited_set(&mut self, set: &WsSet, probability: f64) {
        let mut ids = std::mem::take(&mut self.scratch);
        self.interner.canonical_ids(set, &mut ids);
        if let Entry::Vacant(slot) = self
            .probabilities
            .entry(CanonicalSetKey::from_sorted_ids(&ids))
        {
            slot.insert(MemoEntry {
                probability,
                inherited: true,
            });
            self.inherited_entries += 1;
        }
        self.scratch = ids;
    }

    /// Resolves every memoized entry back to its descriptor list (keys are
    /// interner-local, so export must happen inside the owning shard).
    fn export_entries(&self) -> Vec<(Vec<WsDescriptor>, f64)> {
        self.probabilities
            .iter()
            .map(|(key, entry)| {
                let descriptors = key
                    .ids()
                    .map(|id| self.interner.resolve(id).clone())
                    .collect();
                (descriptors, entry.probability)
            })
            .collect()
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.probabilities.len() as u64,
            interned_descriptors: self.interner.len() as u64,
            inherited_entries: self.inherited_entries,
            inherited_hits: self.inherited_hits,
        }
    }
}

/// Number of independently locked shards. Sixteen keeps contention low for
/// the worker counts of commodity machines while staying cheap to
/// aggregate.
const SHARDS: usize = 16;

/// A sharded [`DecompositionCache`] shareable by reference between scoped
/// worker threads (see the module docs for the locking contract).
///
/// A set is routed to its shard by an order-independent digest of its
/// descriptors, so permutations of the same set always meet in the same
/// shard; each shard owns an independent interner and memo table.
#[derive(Debug)]
pub struct SharedDecompositionCache {
    shards: Vec<Mutex<DecompositionCache>>,
    /// Stamp of the world table this cache is bound to (0 = not yet bound).
    /// Cached probabilities are only valid for one (unmutated) table, so
    /// the first cached run binds the cache and later runs with a
    /// different table are rejected instead of silently returning stale
    /// probabilities.
    bound_table: std::sync::atomic::AtomicU64,
}

impl Default for SharedDecompositionCache {
    fn default() -> Self {
        SharedDecompositionCache {
            shards: (0..SHARDS).map(|_| Mutex::default()).collect(),
            bound_table: std::sync::atomic::AtomicU64::new(0),
        }
    }
}

impl SharedDecompositionCache {
    /// Creates an empty shared cache.
    pub fn new() -> Self {
        SharedDecompositionCache::default()
    }

    /// Binds this cache to `table` on first use and rejects reuse with any
    /// other table (world-table stamps are shared only by unmutated
    /// clones, so equal stamps imply identical contents).
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::CacheTableMismatch`] if the cache is
    /// already bound to a different world table.
    pub fn bind_table(&self, table: &uprob_wsd::WorldTable) -> crate::Result<()> {
        use std::sync::atomic::Ordering;
        let stamp = table.stamp();
        match self
            .bound_table
            .compare_exchange(0, stamp, Ordering::AcqRel, Ordering::Acquire)
        {
            Ok(_) => Ok(()),
            Err(bound) if bound == stamp => Ok(()),
            Err(bound) => Err(crate::CoreError::CacheTableMismatch {
                bound,
                given: stamp,
            }),
        }
    }

    /// True if `set` is worth memoizing: at least two descriptors (smaller
    /// sets are cheaper to solve than to canonicalise), no nullary
    /// descriptor (those short-circuit to probability 1), and within
    /// [`MAX_CACHED_SET_LEN`].
    pub fn is_cacheable(set: &WsSet) -> bool {
        (2..=MAX_CACHED_SET_LEN).contains(&set.len()) && !set.contains_universal()
    }

    /// The shard responsible for `set`: an order-independent and
    /// duplicate-insensitive combination of per-descriptor digests, so
    /// every descriptor list with the same canonical form (sorted,
    /// deduplicated — what `DescriptorInterner::canonical_ids` produces)
    /// routes to the same shard. Duplicate insensitivity matters beyond a
    /// missed reuse: [`Self::inherit_from`] re-inserts entries from their
    /// deduplicated canonical keys, so a duplicate-sensitive digest would
    /// route an inherited entry away from the raw sets that hit it before
    /// the publish.
    fn shard_of(&self, set: &WsSet) -> usize {
        let mut hashes: Vec<u64> = set
            .iter()
            .map(|descriptor| {
                let mut hasher = FxHasher::default();
                descriptor.hash(&mut hasher);
                hasher.finish() | 1
            })
            .collect();
        hashes.sort_unstable();
        hashes.dedup();
        let digest = hashes.into_iter().fold(0u64, u64::wrapping_add);
        (digest % SHARDS as u64) as usize
    }

    /// Locks one shard, recovering from poisoning (see the module docs for
    /// why recovery is sound here: every critical section is a single
    /// atomic-in-effect map operation over deterministic values).
    fn shard_guard(shard: &Mutex<DecompositionCache>) -> MutexGuard<'_, DecompositionCache> {
        shard.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Looks up the probability of `set`, counting the hit or miss.
    pub fn lookup(&self, set: &WsSet) -> CacheLookup {
        let shard = self.shard_of(set);
        // uprob-lint: allow(panic-index) -- shard_of masks into 0..SHARDS
        match Self::shard_guard(&self.shards[shard]).lookup(set) {
            Ok(p) => CacheLookup::Hit(p),
            Err(key) => CacheLookup::Miss(PendingEntry { shard, key }),
        }
    }

    /// Memoizes the probability of the set behind `pending`.
    pub fn insert(&self, pending: PendingEntry, probability: f64) {
        // uprob-lint: allow(panic-index) -- pending.shard was produced by shard_of
        Self::shard_guard(&self.shards[pending.shard]).insert(pending.key, probability);
    }

    /// Non-counting presence probe (tests and diagnostics).
    pub fn probe(&self, set: &WsSet) -> Option<f64> {
        let shard = self.shard_of(set);
        // uprob-lint: allow(panic-index) -- shard_of masks into 0..SHARDS
        Self::shard_guard(&self.shards[shard]).probe(set)
    }

    /// Carries forward every entry of `old` whose descriptors survive the
    /// prior → posterior transition described by `remap`, binding this
    /// cache to `new_table`.
    ///
    /// An entry is inherited iff **every** variable mentioned by **every**
    /// of its descriptors (i) is absent from `touched` (the variables the
    /// conditioning pass eliminated — their assignments changed meaning
    /// under the posterior measure), (ii) is present in `remap`, and
    /// (iii) maps to a variable of `new_table` with a bit-identical domain
    /// and distribution. Entries failing any leg are dropped — the
    /// conservative direction. This is sound because a memoized
    /// `P(ws-set)` is a pure function of the mentioned variables'
    /// distributions (all unmentioned variables marginalise to one), and
    /// the remap produced by conditioning/simplification is monotone (it
    /// preserves relative [`VarId`] order, hence descriptor assignment
    /// order and the whole decomposition recursion), so the inherited
    /// probability is bit-for-bit what recomputation on `new_table` would
    /// produce.
    ///
    /// # Errors
    ///
    /// [`crate::CoreError::CacheTableMismatch`] if `old` is bound to a
    /// table other than `old_table`, or this cache is already bound to a
    /// table other than `new_table`.
    pub fn inherit_from(
        &self,
        old: &SharedDecompositionCache,
        old_table: &WorldTable,
        new_table: &WorldTable,
        remap: &FxHashMap<VarId, VarId>,
        touched: &[VarId],
    ) -> crate::Result<InheritOutcome> {
        use std::sync::atomic::Ordering;
        let old_bound = old.bound_table.load(Ordering::Acquire);
        if old_bound == 0 {
            // The predecessor cache was never used: nothing to inherit,
            // but the new cache still gets bound so later runs are checked.
            self.bind_table(new_table)?;
            return Ok(InheritOutcome::default());
        }
        if old_bound != old_table.stamp() {
            return Err(crate::CoreError::CacheTableMismatch {
                bound: old_bound,
                given: old_table.stamp(),
            });
        }
        self.bind_table(new_table)?;

        // Per-variable eligibility, memoized across entries: Some(new) if
        // the variable survives with an identical distribution, None if any
        // entry mentioning it must be dropped.
        let mut eligible: FxHashMap<VarId, Option<VarId>> = FxHashMap::default();
        let mut resolve = |var: VarId| -> Option<VarId> {
            *eligible.entry(var).or_insert_with(|| {
                if touched.contains(&var) {
                    return None;
                }
                let new_var = *remap.get(&var)?;
                let old_info = old_table.variable(var).ok()?;
                let new_info = new_table.variable(new_var).ok()?;
                let same = old_info.values == new_info.values
                    && old_info.probabilities.len() == new_info.probabilities.len()
                    && old_info
                        .probabilities
                        .iter()
                        .zip(&new_info.probabilities)
                        .all(|(a, b)| a.to_bits() == b.to_bits());
                same.then_some(new_var)
            })
        };

        let mut outcome = InheritOutcome::default();
        for shard in &old.shards {
            let exported = Self::shard_guard(shard).export_entries();
            'entry: for (descriptors, probability) in exported {
                let mut remapped = Vec::with_capacity(descriptors.len());
                for descriptor in &descriptors {
                    let mut rebuilt = WsDescriptor::empty();
                    for a in descriptor.iter() {
                        let Some(new_var) = resolve(a.var) else {
                            outcome.dropped += 1;
                            continue 'entry;
                        };
                        rebuilt
                            .assign(new_var, a.value)
                            // uprob-lint: allow(panic-expect) -- the remap is injective, so remapping preserves functionality
                            .expect("injective remap of a functional descriptor");
                    }
                    remapped.push(rebuilt);
                }
                let set = WsSet::from_descriptors(remapped);
                let target = self.shard_of(&set);
                // uprob-lint: allow(panic-index) -- shard_of masks into 0..SHARDS
                Self::shard_guard(&self.shards[target]).insert_inherited_set(&set, probability);
                outcome.inherited += 1;
            }
        }
        Ok(outcome)
    }

    /// Aggregate counters across all shards and every run that used this
    /// cache.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            let stats = Self::shard_guard(shard).stats();
            total.hits += stats.hits;
            total.misses += stats.misses;
            total.entries += stats.entries;
            total.interned_descriptors += stats.interned_descriptors;
            total.inherited_entries += stats.inherited_entries;
            total.inherited_hits += stats.inherited_hits;
        }
        total
    }
}

/// Result of one [`SharedDecompositionCache::inherit_from`] pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InheritOutcome {
    /// Entries carried forward into the new cache.
    pub inherited: u64,
    /// Entries dropped because a mentioned variable was touched, unmapped
    /// or re-distributed.
    pub dropped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use uprob_wsd::{WorldTable, WsDescriptor};

    fn two_sets() -> (WorldTable, WsSet, WsSet) {
        let mut w = WorldTable::new();
        let j = w.add_variable("j", &[(1, 0.2), (7, 0.8)]).unwrap();
        let b = w.add_variable("b", &[(4, 0.3), (7, 0.7)]).unwrap();
        let d1 = WsDescriptor::from_pairs(&w, &[(j, 1)]).unwrap();
        let d2 = WsDescriptor::from_pairs(&w, &[(b, 4)]).unwrap();
        let s12 = WsSet::from_descriptors(vec![d1.clone(), d2.clone()]);
        let s21 = WsSet::from_descriptors(vec![d2, d1]);
        (w, s12, s21)
    }

    #[test]
    fn miss_then_hit_through_canonicalisation() {
        let (_, s12, s21) = two_sets();
        let cache = SharedDecompositionCache::new();
        let CacheLookup::Miss(key) = cache.lookup(&s12) else {
            panic!("first lookup must miss");
        };
        cache.insert(key, 0.44);
        // The permuted set canonicalises to the same key.
        match cache.lookup(&s21) {
            CacheLookup::Hit(p) => assert_eq!(p, 0.44),
            CacheLookup::Miss(_) => panic!("permuted set must hit"),
        }
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.interned_descriptors, 2);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn duplicate_descriptors_route_to_the_same_shard() {
        // A raw list with a repeated descriptor canonicalises to the same
        // key as its deduplicated form, so it must also meet it in the
        // same shard — otherwise the duplicated probe misses an entry the
        // deduplicated set inserted (and inherited entries, re-inserted
        // from deduplicated canonical keys, would dodge raw probes).
        let (_, s12, _) = two_sets();
        let mut duplicated = s12.clone();
        duplicated.push(s12.descriptors()[0].clone());
        let cache = SharedDecompositionCache::new();
        let CacheLookup::Miss(key) = cache.lookup(&s12) else {
            panic!("first lookup must miss");
        };
        cache.insert(key, 0.44);
        match cache.lookup(&duplicated) {
            CacheLookup::Hit(p) => assert_eq!(p, 0.44),
            CacheLookup::Miss(_) => panic!("duplicated set must hit the deduplicated entry"),
        }
        assert_eq!(cache.probe(&duplicated), Some(0.44));
    }

    #[test]
    fn first_insert_wins() {
        let (_, s12, _) = two_sets();
        let mut cache = DecompositionCache::new();
        let Err(key) = cache.lookup(&s12) else {
            panic!("first lookup must miss");
        };
        cache.insert(key.clone(), 0.44);
        cache.insert(key, 0.99);
        assert_eq!(cache.lookup(&s12), Ok(0.44));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn shared_cache_is_usable_from_scoped_threads() {
        let (_, s12, s21) = two_sets();
        let cache = SharedDecompositionCache::new();
        std::thread::scope(|scope| {
            for set in [&s12, &s21, &s12, &s21] {
                scope.spawn(|| {
                    if let CacheLookup::Miss(key) = cache.lookup(set) {
                        cache.insert(key, 0.44);
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 4);
        assert_eq!(stats.entries, 1);
        match cache.lookup(&s21) {
            CacheLookup::Hit(p) => assert_eq!(p, 0.44),
            CacheLookup::Miss(_) => panic!("must hit after the threads ran"),
        }
    }

    #[test]
    fn cache_rejects_reuse_across_world_tables() {
        use crate::confidence::confidence_with_cache;
        use crate::decompose::DecompositionOptions;
        let (w, s12, _) = two_sets();
        let cache = SharedDecompositionCache::new();
        let options = DecompositionOptions::indve_minlog();
        confidence_with_cache(&s12, &w, &options, Some(&cache)).unwrap();
        // Same (unmutated) clone: fine.
        confidence_with_cache(&s12, &w.clone(), &options, Some(&cache)).unwrap();
        // A different database — even with identical contents — is refused
        // instead of silently serving the first database's probabilities.
        let (other, other_set, _) = two_sets();
        let err = confidence_with_cache(&other_set, &other, &options, Some(&cache)).unwrap_err();
        assert!(matches!(err, crate::CoreError::CacheTableMismatch { .. }));
        // A mutated copy of the original table is refused as well.
        let mut mutated = w.clone();
        mutated.add_boolean("extra", 0.5).unwrap();
        let err = confidence_with_cache(&s12, &mutated, &options, Some(&cache)).unwrap_err();
        assert!(matches!(err, crate::CoreError::CacheTableMismatch { .. }));
        // WE shares the same binding.
        let err = crate::elimination::confidence_by_elimination_with(
            &other_set,
            &other,
            None,
            Some(&cache),
        )
        .unwrap_err();
        assert!(matches!(err, crate::CoreError::CacheTableMismatch { .. }));
    }

    #[test]
    fn poisoned_shard_recovers_for_later_requests() {
        let (_, s12, s21) = two_sets();
        let cache = SharedDecompositionCache::new();
        let CacheLookup::Miss(key) = cache.lookup(&s12) else {
            panic!("first lookup must miss");
        };
        cache.insert(key, 0.44);
        // Poison the shard holding the entry: a thread panics while its
        // guard is live (what an injected worker panic does at worst).
        let shard = cache.shard_of(&s12);
        let poisoner = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let _guard = cache.shards[shard].lock().unwrap();
                    panic!("poison the shard");
                })
                .join()
        });
        assert!(poisoner.is_err(), "the poisoning thread must panic");
        assert!(cache.shards[shard].is_poisoned());
        // Lookup, insert and stats all recover instead of propagating.
        match cache.lookup(&s21) {
            CacheLookup::Hit(p) => assert_eq!(p, 0.44),
            CacheLookup::Miss(_) => panic!("the memoized entry must survive the poisoning"),
        }
        let CacheLookup::Miss(extra) = cache.lookup(&WsSet::from_descriptors(vec![
            s12.iter().next().unwrap().clone(),
            s12.iter().next().unwrap().clone(),
        ])) else {
            panic!("an unseen set must miss");
        };
        cache.insert(extra, 0.2);
        let stats = cache.stats();
        assert!(stats.hits >= 1 && stats.entries >= 1);
    }

    #[test]
    fn empty_cache_stats_are_zero() {
        let cache = SharedDecompositionCache::new();
        let stats = cache.stats();
        assert_eq!(stats, CacheStats::default());
        assert_eq!(stats.hit_rate(), 0.0);
    }

    #[test]
    fn hit_rate_without_lookups_is_zero_not_nan() {
        // The zero-lookup guard: 0/0 must read as 0.0, never NaN.
        let stats = CacheStats::default();
        assert_eq!(stats.hits + stats.misses, 0);
        let rate = stats.hit_rate();
        assert!(!rate.is_nan());
        assert_eq!(rate, 0.0);
        // And with lookups the ratio is the plain fraction.
        let some = CacheStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert!((some.hit_rate() - 0.75).abs() < 1e-15);
    }

    #[test]
    fn inherit_carries_disjoint_entries_and_drops_touched_ones() {
        let mut w = WorldTable::new();
        let j = w.add_variable("j", &[(1, 0.2), (7, 0.8)]).unwrap();
        let b = w.add_variable("b", &[(4, 0.3), (7, 0.7)]).unwrap();
        let c = w.add_boolean("c", 0.5).unwrap();
        let dj = WsDescriptor::from_pairs(&w, &[(j, 1)]).unwrap();
        let db_ = WsDescriptor::from_pairs(&w, &[(b, 4)]).unwrap();
        let dc = WsDescriptor::from_pairs(&w, &[(c, 1)]).unwrap();
        let over_bc = WsSet::from_descriptors(vec![db_.clone(), dc.clone()]);
        let over_jb = WsSet::from_descriptors(vec![dj.clone(), db_.clone()]);

        let old = SharedDecompositionCache::new();
        old.bind_table(&w).unwrap();
        for (set, p) in [(&over_bc, 0.65), (&over_jb, 0.44)] {
            let CacheLookup::Miss(pending) = old.lookup(set) else {
                panic!("fresh set must miss");
            };
            old.insert(pending, p);
        }

        // Simulate conditioning that eliminated j: b and c survive,
        // renumbered down by one (monotone remap), identical distributions.
        let (new_table, remap) = w.retain_variables(|var, _| var != j);
        let touched = vec![j];
        let fresh = SharedDecompositionCache::new();
        let outcome = fresh
            .inherit_from(&old, &w, &new_table, &remap, &touched)
            .unwrap();
        assert_eq!(
            outcome,
            InheritOutcome {
                inherited: 1,
                dropped: 1,
            }
        );

        // The surviving entry answers under the *new* variable ids…
        let nb = remap[&b];
        let nc = remap[&c];
        let d_nb = {
            let mut d = WsDescriptor::empty();
            d.assign(nb, uprob_wsd::ValueIndex(0)).unwrap();
            d
        };
        let d_nc = {
            let mut d = WsDescriptor::empty();
            d.assign(nc, uprob_wsd::ValueIndex(0)).unwrap();
            d
        };
        let remapped_bc = WsSet::from_descriptors(vec![d_nb, d_nc]);
        assert_eq!(fresh.probe(&remapped_bc), Some(0.65));
        match fresh.lookup(&remapped_bc) {
            CacheLookup::Hit(p) => assert_eq!(p, 0.65),
            CacheLookup::Miss(_) => panic!("inherited entry must hit"),
        }
        let stats = fresh.stats();
        assert_eq!(stats.inherited_entries, 1);
        assert_eq!(stats.inherited_hits, 1);
        assert_eq!(stats.entries, 1);

        // The touched entry is gone: nothing in the new cache mentions j's
        // descriptors.
        let d_touch = {
            let mut d = WsDescriptor::empty();
            d.assign(nb, uprob_wsd::ValueIndex(0)).unwrap();
            d
        };
        let gone = WsSet::from_descriptors(vec![d_touch]);
        assert_eq!(fresh.probe(&gone), None);

        // The new cache is bound to the new table: reuse with the old one
        // is rejected.
        assert!(fresh.bind_table(&new_table).is_ok());
        assert!(matches!(
            fresh.bind_table(&w),
            Err(crate::CoreError::CacheTableMismatch { .. })
        ));
    }

    #[test]
    fn inherit_from_unused_cache_binds_without_entries() {
        let (w, _, _) = {
            let mut w = WorldTable::new();
            let j = w.add_variable("j", &[(1, 0.2), (7, 0.8)]).unwrap();
            let b = w.add_variable("b", &[(4, 0.3), (7, 0.7)]).unwrap();
            (w, j, b)
        };
        let old = SharedDecompositionCache::new();
        let remap: FxHashMap<VarId, VarId> = w.variable_ids().map(|v| (v, v)).collect();
        let fresh = SharedDecompositionCache::new();
        let outcome = fresh.inherit_from(&old, &w, &w, &remap, &[]).unwrap();
        assert_eq!(outcome, InheritOutcome::default());
        // Bound to the (new) table nonetheless.
        assert!(fresh.bind_table(&w).is_ok());
    }

    #[test]
    fn identity_inherit_preserves_every_entry_bit_for_bit() {
        // The delta-publish case: append-only growth, identity remap,
        // nothing touched — every entry survives verbatim.
        let (w, s12, _) = two_sets();
        let old = SharedDecompositionCache::new();
        old.bind_table(&w).unwrap();
        let CacheLookup::Miss(pending) = old.lookup(&s12) else {
            panic!("must miss");
        };
        old.insert(pending, 0.44);
        let mut grown = w.clone();
        grown.add_boolean("extra", 0.5).unwrap();
        let remap: FxHashMap<VarId, VarId> = w.variable_ids().map(|v| (v, v)).collect();
        let fresh = SharedDecompositionCache::new();
        let outcome = fresh.inherit_from(&old, &w, &grown, &remap, &[]).unwrap();
        assert_eq!(outcome.inherited, 1);
        assert_eq!(outcome.dropped, 0);
        assert_eq!(fresh.probe(&s12).map(f64::to_bits), Some(0.44f64.to_bits()));
    }
}
