//! The shared decomposition cache: hash-consed ws-set memoization.
//!
//! Exact confidence computation decomposes ws-sets recursively, and the same
//! sub-ws-set recurs constantly: the tail `T` of a variable elimination is
//! revisited in nested contexts, independent components reappear across
//! branches, and the distinct tuples of one query answer share rows with
//! each other and with the answer-level Boolean query. A
//! [`DecompositionCache`] memoizes the probability of every canonical
//! sub-ws-set it sees, so each distinct sub-problem is solved once per
//! database instead of once per occurrence.
//!
//! Keys are built by the hash-consing machinery of `uprob-wsd`
//! ([`DescriptorInterner`] / [`CanonicalSetKey`]): descriptors are interned
//! to dense `u32` ids and a ws-set's key is the sorted, deduplicated id
//! sequence. Equal keys imply equal descriptor sets and therefore equal
//! world-sets, so a cached probability is always sound to reuse. The
//! canonicalisation is purely syntactic (no absorption), so semantically
//! equal but syntactically different sets occupy separate entries — a space
//! trade-off, never a correctness one.
//!
//! # Thread safety
//!
//! [`SharedDecompositionCache`] wraps the cache in a [`Mutex`] so that the
//! batch confidence workers of `uprob-query` (spawned with
//! `std::thread::scope`) can share one cache by reference. Every lookup and
//! insert takes the lock for the duration of one hash-map operation only;
//! probabilities of a ws-set are deterministic, so two workers racing to
//! insert the same key write the same value (the second insert is a no-op)
//! and no worker can observe a wrong entry. The lock is intentionally
//! coarse: correctness first, sharding later (see `DESIGN.md`).
//!
//! Shard access is **poison-tolerant**: a worker that panics while holding
//! a shard lock (contained by the scheduler or the serving layer) must not
//! take every later request down with it. Recovering the guard is sound
//! here because every critical section is one hash-map/interner operation
//! that either completes or leaves the map untouched — `lookup` only reads
//! (its scratch buffer is left valid by `mem::take`), and `insert` is a
//! single first-write-wins entry insertion — and memoized values are pure
//! functions of their keys, so a recovered shard can never serve a wrong
//! probability.

use std::collections::hash_map::Entry;
use std::hash::{Hash, Hasher};
use std::sync::{Mutex, MutexGuard, PoisonError};

use uprob_wsd::fast_hash::FxHasher;
use uprob_wsd::{CanonicalSetKey, DescriptorInterner, FxHashMap, WsSet};

/// Ws-sets larger than this are decomposed without consulting the cache.
///
/// Canonicalising a set costs one hash per descriptor; for the very large
/// outer sets of a decomposition (which almost never recur — reuse lives in
/// the small independent components and elimination tails) that overhead
/// exceeds the expected savings. Sub-sets at or below this size are where
/// sharing actually happens, and their keys are cheap.
pub const MAX_CACHED_SET_LEN: usize = 64;

/// A pending cache entry: the canonical key of a missed set together with
/// the shard that produced it (keys are only meaningful within one shard's
/// interner).
#[derive(Debug)]
pub struct PendingEntry {
    shard: usize,
    key: CanonicalSetKey,
}

/// Outcome of a cache lookup: either a memoized probability, or the
/// pending entry under which the caller should insert its result.
#[derive(Debug)]
pub enum CacheLookup {
    /// The set was solved before; reuse this probability.
    Hit(f64),
    /// The set is new; compute it and call
    /// [`SharedDecompositionCache::insert`] with this pending entry.
    Miss(PendingEntry),
}

/// Aggregate counters of one cache (across all runs that shared it).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the memo table.
    pub hits: u64,
    /// Lookups that missed (and were subsequently computed and inserted).
    pub misses: u64,
    /// Number of memoized ws-set probabilities.
    pub entries: u64,
    /// Number of distinct descriptors interned.
    pub interned_descriptors: u64,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (0 if none were made).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

/// The single-threaded core of one cache shard: an interner plus the
/// probability memo table and hit/miss counters.
#[derive(Debug, Default)]
pub struct DecompositionCache {
    interner: DescriptorInterner,
    probabilities: FxHashMap<CanonicalSetKey, f64>,
    /// Reusable id buffer so hit lookups allocate nothing.
    scratch: Vec<u32>,
    hits: u64,
    misses: u64,
}

impl DecompositionCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        DecompositionCache::default()
    }

    /// Looks up the probability of `set`, counting the hit or miss.
    pub fn lookup(&mut self, set: &WsSet) -> Result<f64, CanonicalSetKey> {
        let mut ids = std::mem::take(&mut self.scratch);
        self.interner.canonical_ids(set, &mut ids);
        // Probe through Borrow<[u32]> — no key allocation on the hit path.
        let result = match self.probabilities.get(ids.as_slice()) {
            Some(&p) => {
                self.hits += 1;
                Ok(p)
            }
            None => {
                self.misses += 1;
                Err(CanonicalSetKey::from_sorted_ids(&ids))
            }
        };
        self.scratch = ids;
        result
    }

    /// Memoizes the probability of the set behind `key`. The first write
    /// wins; concurrent writers always carry the same value.
    pub fn insert(&mut self, key: CanonicalSetKey, probability: f64) {
        if let Entry::Vacant(slot) = self.probabilities.entry(key) {
            slot.insert(probability);
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.probabilities.len() as u64,
            interned_descriptors: self.interner.len() as u64,
        }
    }
}

/// Number of independently locked shards. Sixteen keeps contention low for
/// the worker counts of commodity machines while staying cheap to
/// aggregate.
const SHARDS: usize = 16;

/// A sharded [`DecompositionCache`] shareable by reference between scoped
/// worker threads (see the module docs for the locking contract).
///
/// A set is routed to its shard by an order-independent digest of its
/// descriptors, so permutations of the same set always meet in the same
/// shard; each shard owns an independent interner and memo table.
#[derive(Debug)]
pub struct SharedDecompositionCache {
    shards: Vec<Mutex<DecompositionCache>>,
    /// Stamp of the world table this cache is bound to (0 = not yet bound).
    /// Cached probabilities are only valid for one (unmutated) table, so
    /// the first cached run binds the cache and later runs with a
    /// different table are rejected instead of silently returning stale
    /// probabilities.
    bound_table: std::sync::atomic::AtomicU64,
}

impl Default for SharedDecompositionCache {
    fn default() -> Self {
        SharedDecompositionCache {
            shards: (0..SHARDS).map(|_| Mutex::default()).collect(),
            bound_table: std::sync::atomic::AtomicU64::new(0),
        }
    }
}

impl SharedDecompositionCache {
    /// Creates an empty shared cache.
    pub fn new() -> Self {
        SharedDecompositionCache::default()
    }

    /// Binds this cache to `table` on first use and rejects reuse with any
    /// other table (world-table stamps are shared only by unmutated
    /// clones, so equal stamps imply identical contents).
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::CacheTableMismatch`] if the cache is
    /// already bound to a different world table.
    pub fn bind_table(&self, table: &uprob_wsd::WorldTable) -> crate::Result<()> {
        use std::sync::atomic::Ordering;
        let stamp = table.stamp();
        match self
            .bound_table
            .compare_exchange(0, stamp, Ordering::AcqRel, Ordering::Acquire)
        {
            Ok(_) => Ok(()),
            Err(bound) if bound == stamp => Ok(()),
            Err(bound) => Err(crate::CoreError::CacheTableMismatch {
                bound,
                given: stamp,
            }),
        }
    }

    /// True if `set` is worth memoizing: at least two descriptors (smaller
    /// sets are cheaper to solve than to canonicalise), no nullary
    /// descriptor (those short-circuit to probability 1), and within
    /// [`MAX_CACHED_SET_LEN`].
    pub fn is_cacheable(set: &WsSet) -> bool {
        (2..=MAX_CACHED_SET_LEN).contains(&set.len()) && !set.contains_universal()
    }

    /// The shard responsible for `set`: an order-independent (commutative)
    /// combination of per-descriptor digests, so every permutation of the
    /// same descriptor list routes identically. A list containing
    /// duplicates may route to a different shard than its deduplicated
    /// form — that costs a missed reuse, never a wrong answer (keys are
    /// resolved within one shard).
    fn shard_of(&self, set: &WsSet) -> usize {
        let mut digest = 0u64;
        for descriptor in set.iter() {
            let mut hasher = FxHasher::default();
            descriptor.hash(&mut hasher);
            digest = digest.wrapping_add(hasher.finish() | 1);
        }
        (digest % SHARDS as u64) as usize
    }

    /// Locks one shard, recovering from poisoning (see the module docs for
    /// why recovery is sound here: every critical section is a single
    /// atomic-in-effect map operation over deterministic values).
    fn shard_guard(shard: &Mutex<DecompositionCache>) -> MutexGuard<'_, DecompositionCache> {
        shard.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Looks up the probability of `set`, counting the hit or miss.
    pub fn lookup(&self, set: &WsSet) -> CacheLookup {
        let shard = self.shard_of(set);
        // uprob-lint: allow(panic-index) -- shard_of masks into 0..SHARDS
        match Self::shard_guard(&self.shards[shard]).lookup(set) {
            Ok(p) => CacheLookup::Hit(p),
            Err(key) => CacheLookup::Miss(PendingEntry { shard, key }),
        }
    }

    /// Memoizes the probability of the set behind `pending`.
    pub fn insert(&self, pending: PendingEntry, probability: f64) {
        // uprob-lint: allow(panic-index) -- pending.shard was produced by shard_of
        Self::shard_guard(&self.shards[pending.shard]).insert(pending.key, probability);
    }

    /// Aggregate counters across all shards and every run that used this
    /// cache.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            let stats = Self::shard_guard(shard).stats();
            total.hits += stats.hits;
            total.misses += stats.misses;
            total.entries += stats.entries;
            total.interned_descriptors += stats.interned_descriptors;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uprob_wsd::{WorldTable, WsDescriptor};

    fn two_sets() -> (WorldTable, WsSet, WsSet) {
        let mut w = WorldTable::new();
        let j = w.add_variable("j", &[(1, 0.2), (7, 0.8)]).unwrap();
        let b = w.add_variable("b", &[(4, 0.3), (7, 0.7)]).unwrap();
        let d1 = WsDescriptor::from_pairs(&w, &[(j, 1)]).unwrap();
        let d2 = WsDescriptor::from_pairs(&w, &[(b, 4)]).unwrap();
        let s12 = WsSet::from_descriptors(vec![d1.clone(), d2.clone()]);
        let s21 = WsSet::from_descriptors(vec![d2, d1]);
        (w, s12, s21)
    }

    #[test]
    fn miss_then_hit_through_canonicalisation() {
        let (_, s12, s21) = two_sets();
        let cache = SharedDecompositionCache::new();
        let CacheLookup::Miss(key) = cache.lookup(&s12) else {
            panic!("first lookup must miss");
        };
        cache.insert(key, 0.44);
        // The permuted set canonicalises to the same key.
        match cache.lookup(&s21) {
            CacheLookup::Hit(p) => assert_eq!(p, 0.44),
            CacheLookup::Miss(_) => panic!("permuted set must hit"),
        }
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.interned_descriptors, 2);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn first_insert_wins() {
        let (_, s12, _) = two_sets();
        let mut cache = DecompositionCache::new();
        let Err(key) = cache.lookup(&s12) else {
            panic!("first lookup must miss");
        };
        cache.insert(key.clone(), 0.44);
        cache.insert(key, 0.99);
        assert_eq!(cache.lookup(&s12), Ok(0.44));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn shared_cache_is_usable_from_scoped_threads() {
        let (_, s12, s21) = two_sets();
        let cache = SharedDecompositionCache::new();
        std::thread::scope(|scope| {
            for set in [&s12, &s21, &s12, &s21] {
                scope.spawn(|| {
                    if let CacheLookup::Miss(key) = cache.lookup(set) {
                        cache.insert(key, 0.44);
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 4);
        assert_eq!(stats.entries, 1);
        match cache.lookup(&s21) {
            CacheLookup::Hit(p) => assert_eq!(p, 0.44),
            CacheLookup::Miss(_) => panic!("must hit after the threads ran"),
        }
    }

    #[test]
    fn cache_rejects_reuse_across_world_tables() {
        use crate::confidence::confidence_with_cache;
        use crate::decompose::DecompositionOptions;
        let (w, s12, _) = two_sets();
        let cache = SharedDecompositionCache::new();
        let options = DecompositionOptions::indve_minlog();
        confidence_with_cache(&s12, &w, &options, Some(&cache)).unwrap();
        // Same (unmutated) clone: fine.
        confidence_with_cache(&s12, &w.clone(), &options, Some(&cache)).unwrap();
        // A different database — even with identical contents — is refused
        // instead of silently serving the first database's probabilities.
        let (other, other_set, _) = two_sets();
        let err = confidence_with_cache(&other_set, &other, &options, Some(&cache)).unwrap_err();
        assert!(matches!(err, crate::CoreError::CacheTableMismatch { .. }));
        // A mutated copy of the original table is refused as well.
        let mut mutated = w.clone();
        mutated.add_boolean("extra", 0.5).unwrap();
        let err = confidence_with_cache(&s12, &mutated, &options, Some(&cache)).unwrap_err();
        assert!(matches!(err, crate::CoreError::CacheTableMismatch { .. }));
        // WE shares the same binding.
        let err = crate::elimination::confidence_by_elimination_with(
            &other_set,
            &other,
            None,
            Some(&cache),
        )
        .unwrap_err();
        assert!(matches!(err, crate::CoreError::CacheTableMismatch { .. }));
    }

    #[test]
    fn poisoned_shard_recovers_for_later_requests() {
        let (_, s12, s21) = two_sets();
        let cache = SharedDecompositionCache::new();
        let CacheLookup::Miss(key) = cache.lookup(&s12) else {
            panic!("first lookup must miss");
        };
        cache.insert(key, 0.44);
        // Poison the shard holding the entry: a thread panics while its
        // guard is live (what an injected worker panic does at worst).
        let shard = cache.shard_of(&s12);
        let poisoner = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let _guard = cache.shards[shard].lock().unwrap();
                    panic!("poison the shard");
                })
                .join()
        });
        assert!(poisoner.is_err(), "the poisoning thread must panic");
        assert!(cache.shards[shard].is_poisoned());
        // Lookup, insert and stats all recover instead of propagating.
        match cache.lookup(&s21) {
            CacheLookup::Hit(p) => assert_eq!(p, 0.44),
            CacheLookup::Miss(_) => panic!("the memoized entry must survive the poisoning"),
        }
        let CacheLookup::Miss(extra) = cache.lookup(&WsSet::from_descriptors(vec![
            s12.iter().next().unwrap().clone(),
            s12.iter().next().unwrap().clone(),
        ])) else {
            panic!("an unseen set must miss");
        };
        cache.insert(extra, 0.2);
        let stats = cache.stats();
        assert!(stats.hits >= 1 && stats.entries >= 1);
    }

    #[test]
    fn empty_cache_stats_are_zero() {
        let cache = SharedDecompositionCache::new();
        let stats = cache.stats();
        assert_eq!(stats, CacheStats::default());
        assert_eq!(stats.hit_rate(), 0.0);
    }
}
