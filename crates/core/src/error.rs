//! Error type for decomposition, confidence computation and conditioning.

use std::fmt;

use uprob_urel::UrelError;
use uprob_wsd::WsdError;

/// Errors raised by the decomposition, confidence and conditioning
/// algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Conditioning was attempted on an empty (or zero-probability)
    /// world-set; the posterior is undefined.
    EmptyCondition,
    /// The configured node budget was exhausted before the computation
    /// finished (used by the benchmark harness to emulate timeouts).
    BudgetExceeded {
        /// The budget that was exceeded.
        budget: u64,
    },
    /// A shared decomposition cache was reused with a different world
    /// table than the one it was first populated from. Cached
    /// probabilities are only valid for one (unmutated) table; hold one
    /// cache per database version (see DESIGN.md).
    CacheTableMismatch {
        /// Stamp of the world table the cache is bound to.
        bound: u64,
        /// Stamp of the world table of the rejected call.
        given: u64,
    },
    /// An error bubbled up from the ws-descriptor layer.
    Wsd(WsdError),
    /// An error bubbled up from the U-relation layer.
    Urel(UrelError),
    /// An error bubbled up from the Monte-Carlo approximation layer (the
    /// sampling fallback of the hybrid confidence engine).
    Approx(uprob_approx::ApproxError),
    /// The `UPROB_WORKERS` environment variable (or an equivalent worker
    /// spec) was set but did not parse as a positive integer. Malformed
    /// specs are rejected rather than silently falling back to an
    /// automatic worker count: a CI determinism matrix that typos its
    /// worker knob must fail loudly, not quietly test the wrong policy.
    InvalidWorkerSpec {
        /// The rejected raw value.
        spec: String,
    },
    /// A worker thread of the parallel scheduler panicked mid-task. The
    /// panic is contained to the run that owned the worker: the scheduler
    /// drains, the remaining workers exit cleanly, and the run fails with
    /// this error instead of unwinding (or deadlocking) the whole process
    /// — which is what lets the serving layer fail one request and keep
    /// serving the rest.
    WorkerPanicked {
        /// The panic payload rendered to text (best effort: non-string
        /// payloads are summarized).
        message: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::EmptyCondition => {
                write!(f, "cannot condition on an empty or impossible world-set")
            }
            CoreError::BudgetExceeded { budget } => {
                write!(f, "decomposition exceeded the node budget of {budget}")
            }
            CoreError::CacheTableMismatch { bound, given } => {
                write!(
                    f,
                    "decomposition cache is bound to world table {bound} but was \
                     used with world table {given}; hold one cache per database"
                )
            }
            CoreError::Wsd(e) => write!(f, "world-set descriptor error: {e}"),
            CoreError::Urel(e) => write!(f, "U-relation error: {e}"),
            CoreError::Approx(e) => write!(f, "approximation error: {e}"),
            CoreError::InvalidWorkerSpec { spec } => {
                write!(
                    f,
                    "invalid worker spec {spec:?}: expected a positive integer                      (unset or empty means automatic)"
                )
            }
            CoreError::WorkerPanicked { message } => {
                write!(f, "a parallel worker panicked: {message}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Wsd(e) => Some(e),
            CoreError::Urel(e) => Some(e),
            CoreError::Approx(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WsdError> for CoreError {
    fn from(e: WsdError) -> Self {
        CoreError::Wsd(e)
    }
}

impl From<UrelError> for CoreError {
    fn from(e: UrelError) -> Self {
        CoreError::Urel(e)
    }
}

impl From<uprob_approx::ApproxError> for CoreError {
    fn from(e: uprob_approx::ApproxError) -> Self {
        CoreError::Approx(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(CoreError::EmptyCondition.to_string().contains("empty"));
        assert!(CoreError::BudgetExceeded { budget: 10 }
            .to_string()
            .contains("10"));
        let e: CoreError = WsdError::EmptyDomain { name: "x".into() }.into();
        assert!(e.to_string().contains("world-set descriptor"));
        let e = CoreError::WorkerPanicked {
            message: "boom".into(),
        };
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn source_chains() {
        use std::error::Error;
        let e: CoreError = WsdError::EmptyDomain { name: "x".into() }.into();
        assert!(e.source().is_some());
        assert!(CoreError::EmptyCondition.source().is_none());
    }
}
