//! Instrumentation collected during decomposition, confidence computation
//! and conditioning.

/// Counters describing one run of the `ComputeTree`-style decomposition
/// (whether materialised as a ws-tree or folded directly into probability /
/// conditioning computation).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DecompositionStats {
    /// Number of ⊗ (independent partitioning) nodes created.
    pub independent_nodes: u64,
    /// Number of ⊕ (variable elimination) nodes created.
    pub choice_nodes: u64,
    /// Number of `∅` leaves (ws-sets containing the nullary descriptor).
    pub leaves: u64,
    /// Number of `⊥` leaves (empty ws-sets).
    pub bottoms: u64,
    /// Total number of ⊕-node branches explored.
    pub branches: u64,
    /// Maximum recursion depth reached.
    pub max_depth: u64,
    /// Number of variables eliminated (with multiplicity: the same variable
    /// can be eliminated independently in different branches).
    pub variable_eliminations: u64,
    /// Number of sub-ws-sets answered from the shared decomposition cache
    /// (zero when no cache was supplied).
    pub cache_hits: u64,
    /// Number of sub-ws-sets looked up in the shared decomposition cache but
    /// not found (they are computed and inserted).
    pub cache_misses: u64,
}

impl DecompositionStats {
    /// Total number of inner and leaf nodes of the (virtual) ws-tree.
    pub fn total_nodes(&self) -> u64 {
        self.independent_nodes + self.choice_nodes + self.leaves + self.bottoms
    }

    /// Fraction of cache lookups answered from the cache, or 0 if the run
    /// performed no lookups.
    pub fn cache_hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }

    /// Merges counters from a sub-computation into `self`.
    pub fn absorb(&mut self, other: &DecompositionStats) {
        self.independent_nodes += other.independent_nodes;
        self.choice_nodes += other.choice_nodes;
        self.leaves += other.leaves;
        self.bottoms += other.bottoms;
        self.branches += other.branches;
        self.max_depth = self.max_depth.max(other.max_depth);
        self.variable_eliminations += other.variable_eliminations;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
    }
}

/// The result of an exact confidence computation: the probability together
/// with the work performed to obtain it.
#[derive(Clone, Debug, PartialEq)]
pub struct Confidence {
    /// The exact probability of the ws-set.
    pub probability: f64,
    /// Decomposition counters.
    pub stats: DecompositionStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_nodes_sums_all_kinds() {
        let stats = DecompositionStats {
            independent_nodes: 1,
            choice_nodes: 2,
            leaves: 3,
            bottoms: 4,
            branches: 9,
            max_depth: 5,
            variable_eliminations: 2,
            ..Default::default()
        };
        assert_eq!(stats.total_nodes(), 10);
    }

    #[test]
    fn absorb_merges_counters() {
        let mut a = DecompositionStats {
            independent_nodes: 1,
            choice_nodes: 1,
            leaves: 1,
            bottoms: 0,
            branches: 2,
            max_depth: 3,
            variable_eliminations: 1,
            cache_hits: 1,
            cache_misses: 2,
        };
        let b = DecompositionStats {
            independent_nodes: 0,
            choice_nodes: 2,
            leaves: 2,
            bottoms: 1,
            branches: 4,
            max_depth: 7,
            variable_eliminations: 2,
            cache_hits: 3,
            cache_misses: 1,
        };
        a.absorb(&b);
        assert_eq!(a.choice_nodes, 3);
        assert_eq!(a.max_depth, 7);
        assert_eq!(a.variable_eliminations, 3);
        assert_eq!(a.total_nodes(), 8);
        assert_eq!(a.cache_hits, 4);
        assert_eq!(a.cache_misses, 3);
    }

    #[test]
    fn cache_hit_rate_handles_zero_lookups() {
        let mut stats = DecompositionStats::default();
        assert_eq!(stats.cache_hit_rate(), 0.0);
        stats.cache_hits = 3;
        stats.cache_misses = 1;
        assert!((stats.cache_hit_rate() - 0.75).abs() < 1e-12);
    }
}
