//! Tuples: ordered lists of values.

use std::fmt;

use crate::value::Value;

/// A tuple of relational values, positionally matching a
/// [`crate::Schema`].
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Creates a tuple from its values.
    pub fn new(values: Vec<Value>) -> Tuple {
        Tuple { values }
    }

    /// The empty (nullary) tuple, used by Boolean queries.
    pub fn nullary() -> Tuple {
        Tuple::default()
    }

    /// Number of values (arity).
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The value at position `index`, if any.
    pub fn get(&self, index: usize) -> Option<&Value> {
        self.values.get(index)
    }

    /// All values in order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Builds the concatenation of two tuples (used by joins).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut values = self.values.clone();
        values.extend(other.values.iter().cloned());
        Tuple { values }
    }

    /// Projects the tuple onto the given positions, in order.
    ///
    /// # Panics
    ///
    /// Panics if a position is out of range; callers resolve positions via
    /// the schema first.
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple {
            // uprob-lint: allow(panic-index) -- documented panic contract: callers resolve positions via the schema
            values: positions.iter().map(|&i| self.values[i].clone()).collect(),
        }
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tuple::new(vec![Value::Int(1), Value::str("John")]);
        assert_eq!(t.arity(), 2);
        assert_eq!(t.get(0), Some(&Value::Int(1)));
        assert_eq!(t.get(2), None);
        assert_eq!(t.values().len(), 2);
    }

    #[test]
    fn nullary_tuple() {
        let t = Tuple::nullary();
        assert_eq!(t.arity(), 0);
        assert_eq!(t.to_string(), "()");
    }

    #[test]
    fn concat_and_project() {
        let a = Tuple::new(vec![Value::Int(1), Value::str("x")]);
        let b = Tuple::new(vec![Value::Bool(true)]);
        let c = a.concat(&b);
        assert_eq!(c.arity(), 3);
        let p = c.project(&[2, 0]);
        assert_eq!(p.values(), &[Value::Bool(true), Value::Int(1)]);
    }

    #[test]
    fn display_renders_values() {
        let t = Tuple::new(vec![Value::Int(7), Value::str("Bill")]);
        assert_eq!(t.to_string(), "(7, Bill)");
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = Tuple::new(vec![Value::Int(1), Value::Int(9)]);
        let b = Tuple::new(vec![Value::Int(2), Value::Int(0)]);
        assert!(a < b);
    }
}
