//! Selection and join predicates.
//!
//! Predicates are small expression trees over column references and
//! constants, evaluated against a tuple together with its schema. Join
//! conditions are ordinary predicates over the concatenated schema of the
//! two operands (see [`crate::Schema::concat`]).

use std::fmt;
use uprob_wsd::FxHashMap;

use crate::error::UrelError;
use crate::schema::{ColumnType, Schema};
use crate::tuple::Tuple;
use crate::value::Value;
use crate::Result;

/// A reference to a column by name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColumnRef {
    /// Column name as it appears in the schema the predicate is evaluated
    /// against.
    pub name: String,
}

/// A scalar expression: a column reference or a constant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// Reference to a column by name.
    Column(ColumnRef),
    /// A constant value.
    Const(Value),
}

impl Expr {
    /// Column reference expression.
    pub fn col(name: &str) -> Expr {
        Expr::Column(ColumnRef {
            name: name.to_string(),
        })
    }

    /// Constant expression.
    pub fn val(value: impl Into<Value>) -> Expr {
        Expr::Const(value.into())
    }

    /// Evaluates the expression against a tuple.
    pub fn eval(&self, schema: &Schema, tuple: &Tuple) -> Result<Value> {
        match self {
            Expr::Const(v) => Ok(v.clone()),
            Expr::Column(c) => {
                let idx = schema.column_index(&c.name)?;
                tuple
                    .get(idx)
                    .cloned()
                    .ok_or_else(|| UrelError::TupleSchemaMismatch {
                        relation: schema.name().to_string(),
                        detail: format!("tuple has no value at position {idx}"),
                    })
            }
        }
    }
}

impl Expr {
    /// The statically known type of the expression against `schema`:
    /// the column type for references, the value's type for non-NULL
    /// constants, `None` for the NULL constant (which compares with every
    /// type under the SQL rule that the comparison is never satisfied).
    ///
    /// # Errors
    ///
    /// Returns [`UrelError::UnknownColumn`] for an unresolvable reference.
    pub fn static_type(&self, schema: &Schema) -> Result<Option<ColumnType>> {
        match self {
            Expr::Column(c) => {
                let idx = schema.column_index(&c.name)?;
                // uprob-lint: allow(panic-index) -- idx was just resolved by `column_index` on the same schema
                Ok(Some(schema.columns()[idx].column_type))
            }
            Expr::Const(Value::Null) => Ok(None),
            Expr::Const(Value::Bool(_)) => Ok(Some(ColumnType::Bool)),
            Expr::Const(Value::Int(_)) => Ok(Some(ColumnType::Int)),
            Expr::Const(Value::Float(_)) => Ok(Some(ColumnType::Float)),
            Expr::Const(Value::Str(_)) => Ok(Some(ColumnType::Str)),
        }
    }

    /// Rewrites column references through `map`; returns `None` if a
    /// referenced column has no entry (the optimizer then keeps the
    /// predicate where it is instead of pushing it down).
    fn rename_columns(&self, map: &FxHashMap<String, String>) -> Option<Expr> {
        match self {
            Expr::Const(v) => Some(Expr::Const(v.clone())),
            Expr::Column(c) => map.get(&c.name).map(|n| Expr::col(n)),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{}", c.name),
            Expr::Const(Value::Str(s)) => write!(f, "'{s}'"),
            Expr::Const(v) => write!(f, "{v}"),
        }
    }
}

/// Comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Comparison {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl Comparison {
    /// Applies the comparison to two values with SQL NULL semantics (a
    /// comparison involving NULL is never satisfied). Shared by the
    /// name-resolving [`Predicate::eval`] and the executor's compiled,
    /// positional predicates — one copy, so the eager and the pipelined
    /// path cannot drift apart.
    pub(crate) fn apply(self, left: &Value, right: &Value) -> bool {
        // SQL-style: comparisons involving NULL are never satisfied.
        if left.is_null() || right.is_null() {
            return false;
        }
        let ord = left.cmp(right);
        match self {
            Comparison::Eq => ord == std::cmp::Ordering::Equal,
            Comparison::Ne => ord != std::cmp::Ordering::Equal,
            Comparison::Lt => ord == std::cmp::Ordering::Less,
            Comparison::Le => ord != std::cmp::Ordering::Greater,
            Comparison::Gt => ord == std::cmp::Ordering::Greater,
            Comparison::Ge => ord != std::cmp::Ordering::Less,
        }
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Comparison::Eq => "=",
            Comparison::Ne => "<>",
            Comparison::Lt => "<",
            Comparison::Le => "<=",
            Comparison::Gt => ">",
            Comparison::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// A Boolean predicate over one tuple.
#[derive(Clone, Debug, PartialEq)]
pub enum Predicate {
    /// Always true.
    True,
    /// Always false.
    False,
    /// Comparison of two scalar expressions.
    Cmp {
        /// Left operand.
        left: Expr,
        /// Operator.
        op: Comparison,
        /// Right operand.
        right: Expr,
    },
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `left op right`.
    pub fn cmp(left: Expr, op: Comparison, right: Expr) -> Predicate {
        Predicate::Cmp { left, op, right }
    }

    /// `column = constant`.
    pub fn col_eq(column: &str, value: impl Into<Value>) -> Predicate {
        Predicate::cmp(Expr::col(column), Comparison::Eq, Expr::val(value))
    }

    /// `left-column = right-column` (typical equi-join condition).
    pub fn cols_eq(left: &str, right: &str) -> Predicate {
        Predicate::cmp(Expr::col(left), Comparison::Eq, Expr::col(right))
    }

    /// `column BETWEEN low AND high` (inclusive).
    pub fn between(column: &str, low: impl Into<Value>, high: impl Into<Value>) -> Predicate {
        Predicate::cmp(Expr::col(column), Comparison::Ge, Expr::val(low)).and(Predicate::cmp(
            Expr::col(column),
            Comparison::Le,
            Expr::val(high),
        ))
    }

    /// Conjunction with another predicate.
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Disjunction with another predicate.
    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Predicate {
        Predicate::Not(Box::new(self))
    }

    /// Evaluates the predicate on a tuple.
    ///
    /// # Errors
    ///
    /// Returns an error if a referenced column does not exist.
    pub fn eval(&self, schema: &Schema, tuple: &Tuple) -> Result<bool> {
        match self {
            Predicate::True => Ok(true),
            Predicate::False => Ok(false),
            Predicate::Cmp { left, op, right } => {
                let l = left.eval(schema, tuple)?;
                let r = right.eval(schema, tuple)?;
                Ok(op.apply(&l, &r))
            }
            Predicate::And(a, b) => Ok(a.eval(schema, tuple)? && b.eval(schema, tuple)?),
            Predicate::Or(a, b) => Ok(a.eval(schema, tuple)? || b.eval(schema, tuple)?),
            Predicate::Not(p) => Ok(!p.eval(schema, tuple)?),
        }
    }

    /// Statically checks the predicate against a schema: every referenced
    /// column must exist and the two sides of each comparison must have
    /// comparable types.
    ///
    /// Comparable means: equal types, or both numeric (`INT`/`FLOAT`)
    /// under an *ordering* operator — mixed-numeric `<`/`<=`/`>`/`>=`
    /// compare as floats with ties broken by type ([`Value`]'s total
    /// order). Mixed-numeric `=`/`<>` is rejected: [`Value`] equality
    /// never identifies `Int(24)` with `Float(24.0)`, so such an equality
    /// is constantly false (and the inequality constantly true) — the
    /// silent-empty-answer class of query bug this check exists to catch,
    /// same as `STR = INT`.
    ///
    /// The plan validator runs this before execution, so a malformed
    /// predicate fails identically on the eager and the pipelined path —
    /// including plans whose execution would never reach the predicate
    /// (empty inputs, pruned branches).
    ///
    /// # Errors
    ///
    /// Returns [`UrelError::UnknownColumn`] or [`UrelError::TypeError`].
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        match self {
            Predicate::True | Predicate::False => Ok(()),
            Predicate::Cmp { left, op, right } => {
                let lt = left.static_type(schema)?;
                let rt = right.static_type(schema)?;
                if let (Some(a), Some(b)) = (lt, rt) {
                    let numeric = |t| matches!(t, ColumnType::Int | ColumnType::Float);
                    let comparable = a == b
                        || (numeric(a)
                            && numeric(b)
                            && !matches!(op, Comparison::Eq | Comparison::Ne));
                    if !comparable {
                        return Err(UrelError::TypeError {
                            detail: format!("cannot compare {a} {op} {b} in '{left} {op} {right}'"),
                        });
                    }
                }
                Ok(())
            }
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                a.validate(schema)?;
                b.validate(schema)
            }
            Predicate::Not(p) => p.validate(schema),
        }
    }

    /// Splits the predicate into its top-level conjuncts (flattening nested
    /// `AND`s; `OR`/`NOT` subtrees stay intact). `TRUE` conjuncts are
    /// dropped; splitting `TRUE` itself yields the empty list.
    pub fn into_conjuncts(self) -> Vec<Predicate> {
        let mut out = Vec::new();
        fn walk(p: Predicate, out: &mut Vec<Predicate>) {
            match p {
                Predicate::True => {}
                Predicate::And(a, b) => {
                    walk(*a, out);
                    walk(*b, out);
                }
                other => out.push(other),
            }
        }
        walk(self, &mut out);
        out
    }

    /// The conjunction of a list of predicates: `TRUE` for the empty list,
    /// `FALSE` as soon as a conjunct is `FALSE`, and the left-deep `AND`
    /// chain of the rest (dual of [`Predicate::into_conjuncts`]).
    pub fn conjoin(conjuncts: impl IntoIterator<Item = Predicate>) -> Predicate {
        let mut result: Option<Predicate> = None;
        for c in conjuncts {
            match c {
                Predicate::True => {}
                Predicate::False => return Predicate::False,
                c => {
                    result = Some(match result {
                        None => c,
                        Some(acc) => acc.and(c),
                    })
                }
            }
        }
        result.unwrap_or(Predicate::True)
    }

    /// The names of all referenced columns, de-duplicated, in first-use
    /// order.
    pub fn referenced_columns(&self) -> Vec<String> {
        fn walk(p: &Predicate, out: &mut Vec<String>) {
            match p {
                Predicate::True | Predicate::False => {}
                Predicate::Cmp { left, right, .. } => {
                    for expr in [left, right] {
                        if let Expr::Column(c) = expr {
                            if !out.iter().any(|n| n == &c.name) {
                                out.push(c.name.clone());
                            }
                        }
                    }
                }
                Predicate::And(a, b) | Predicate::Or(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                Predicate::Not(p) => walk(p, out),
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }

    /// Rewrites every column reference through `map` (used by pushdown
    /// through unions and joins, where the same column has different names
    /// above and below the operator). Returns `None` if a referenced column
    /// has no entry; the optimizer then leaves the predicate in place.
    pub fn rename_columns(&self, map: &FxHashMap<String, String>) -> Option<Predicate> {
        Some(match self {
            Predicate::True => Predicate::True,
            Predicate::False => Predicate::False,
            Predicate::Cmp { left, op, right } => Predicate::Cmp {
                left: left.rename_columns(map)?,
                op: *op,
                right: right.rename_columns(map)?,
            },
            Predicate::And(a, b) => Predicate::And(
                Box::new(a.rename_columns(map)?),
                Box::new(b.rename_columns(map)?),
            ),
            Predicate::Or(a, b) => Predicate::Or(
                Box::new(a.rename_columns(map)?),
                Box::new(b.rename_columns(map)?),
            ),
            Predicate::Not(p) => Predicate::Not(Box::new(p.rename_columns(map)?)),
        })
    }

    /// Constant-folds the trivial connectives: `TRUE AND p → p`,
    /// `FALSE AND p → FALSE`, `TRUE OR p → TRUE`, `FALSE OR p → p`,
    /// `NOT TRUE → FALSE`, `NOT NOT p → p`. World-by-world equivalent to
    /// the input (comparisons are untouched).
    pub fn simplify(self) -> Predicate {
        match self {
            Predicate::And(a, b) => match (a.simplify(), b.simplify()) {
                (Predicate::False, _) | (_, Predicate::False) => Predicate::False,
                (Predicate::True, p) | (p, Predicate::True) => p,
                (a, b) => a.and(b),
            },
            Predicate::Or(a, b) => match (a.simplify(), b.simplify()) {
                (Predicate::True, _) | (_, Predicate::True) => Predicate::True,
                (Predicate::False, p) | (p, Predicate::False) => p,
                (a, b) => a.or(b),
            },
            Predicate::Not(p) => match p.simplify() {
                Predicate::True => Predicate::False,
                Predicate::False => Predicate::True,
                Predicate::Not(inner) => *inner,
                p => p.not(),
            },
            other => other,
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => write!(f, "true"),
            Predicate::False => write!(f, "false"),
            Predicate::Cmp { left, op, right } => write!(f, "{left} {op} {right}"),
            Predicate::And(a, b) => write!(f, "({a} AND {b})"),
            Predicate::Or(a, b) => write!(f, "({a} OR {b})"),
            Predicate::Not(p) => write!(f, "NOT ({p})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;

    fn schema() -> Schema {
        Schema::new(
            "R",
            &[
                ("SSN", ColumnType::Int),
                ("NAME", ColumnType::Str),
                ("SCORE", ColumnType::Float),
            ],
        )
    }

    fn tuple() -> Tuple {
        Tuple::new(vec![Value::Int(7), Value::str("Bill"), Value::Float(0.5)])
    }

    #[test]
    fn comparisons() {
        let s = schema();
        let t = tuple();
        assert!(Predicate::col_eq("NAME", "Bill").eval(&s, &t).unwrap());
        assert!(!Predicate::col_eq("NAME", "John").eval(&s, &t).unwrap());
        assert!(
            Predicate::cmp(Expr::col("SSN"), Comparison::Gt, Expr::val(4i64))
                .eval(&s, &t)
                .unwrap()
        );
        assert!(
            Predicate::cmp(Expr::col("SSN"), Comparison::Le, Expr::val(7i64))
                .eval(&s, &t)
                .unwrap()
        );
        assert!(
            Predicate::cmp(Expr::col("SSN"), Comparison::Ne, Expr::val(4i64))
                .eval(&s, &t)
                .unwrap()
        );
        assert!(
            !Predicate::cmp(Expr::col("SSN"), Comparison::Lt, Expr::val(7i64))
                .eval(&s, &t)
                .unwrap()
        );
    }

    #[test]
    fn boolean_connectives() {
        let s = schema();
        let t = tuple();
        let p = Predicate::col_eq("NAME", "Bill").and(Predicate::col_eq("SSN", 7i64));
        assert!(p.eval(&s, &t).unwrap());
        let q = Predicate::col_eq("NAME", "John").or(Predicate::col_eq("SSN", 7i64));
        assert!(q.eval(&s, &t).unwrap());
        assert!(!q.clone().not().eval(&s, &t).unwrap());
        assert!(Predicate::True.eval(&s, &t).unwrap());
        assert!(!Predicate::False.eval(&s, &t).unwrap());
    }

    #[test]
    fn between_is_inclusive() {
        let s = schema();
        let t = tuple();
        assert!(Predicate::between("SCORE", 0.5, 0.8).eval(&s, &t).unwrap());
        assert!(Predicate::between("SCORE", 0.0, 0.5).eval(&s, &t).unwrap());
        assert!(!Predicate::between("SCORE", 0.6, 0.8).eval(&s, &t).unwrap());
    }

    #[test]
    fn null_comparisons_are_false() {
        let s = schema();
        let t = Tuple::new(vec![Value::Null, Value::str("Bill"), Value::Float(0.5)]);
        assert!(!Predicate::col_eq("SSN", 7i64).eval(&s, &t).unwrap());
        assert!(
            !Predicate::cmp(Expr::col("SSN"), Comparison::Ne, Expr::val(7i64))
                .eval(&s, &t)
                .unwrap()
        );
    }

    #[test]
    fn unknown_column_is_an_error() {
        let s = schema();
        let t = tuple();
        assert!(Predicate::col_eq("MISSING", 1i64).eval(&s, &t).is_err());
    }

    #[test]
    fn cols_eq_compares_two_columns() {
        let s = Schema::new("J", &[("A", ColumnType::Int), ("B", ColumnType::Int)]);
        let equal = Tuple::new(vec![Value::Int(3), Value::Int(3)]);
        let differ = Tuple::new(vec![Value::Int(3), Value::Int(4)]);
        let p = Predicate::cols_eq("A", "B");
        assert!(p.eval(&s, &equal).unwrap());
        assert!(!p.eval(&s, &differ).unwrap());
    }

    #[test]
    fn validate_catches_type_mismatches() {
        let s = schema();
        // Comparable: same type, or mixed numeric.
        assert!(Predicate::col_eq("NAME", "Bill").validate(&s).is_ok());
        assert!(Predicate::col_eq("SSN", 7i64).validate(&s).is_ok());
        // Mixed numeric: ordering comparisons are well defined...
        assert!(
            Predicate::cmp(Expr::col("SSN"), Comparison::Lt, Expr::val(2.5))
                .validate(&s)
                .is_ok()
        );
        assert!(
            Predicate::cmp(Expr::col("SSN"), Comparison::Ge, Expr::col("SCORE"))
                .validate(&s)
                .is_ok()
        );
        // ...but mixed-numeric equality can never be satisfied (Value
        // equality does not identify Int with Float), so it is rejected.
        assert!(matches!(
            Predicate::cols_eq("SSN", "SCORE").validate(&s),
            Err(UrelError::TypeError { .. })
        ));
        assert!(matches!(
            Predicate::col_eq("SSN", 7.0).validate(&s),
            Err(UrelError::TypeError { .. })
        ));
        assert!(matches!(
            Predicate::cmp(Expr::col("SCORE"), Comparison::Ne, Expr::val(7i64)).validate(&s),
            Err(UrelError::TypeError { .. })
        ));
        // NULL compares (to false) with everything.
        assert!(
            Predicate::cmp(Expr::col("NAME"), Comparison::Eq, Expr::Const(Value::Null))
                .validate(&s)
                .is_ok()
        );
        // Incomparable combinations are static type errors.
        assert!(matches!(
            Predicate::col_eq("NAME", 7i64).validate(&s),
            Err(UrelError::TypeError { .. })
        ));
        assert!(matches!(
            Predicate::col_eq("SSN", "seven").validate(&s),
            Err(UrelError::TypeError { .. })
        ));
        assert!(matches!(
            Predicate::cols_eq("SSN", "NAME").validate(&s),
            Err(UrelError::TypeError { .. })
        ));
        assert!(matches!(
            Predicate::cmp(Expr::col("SSN"), Comparison::Gt, Expr::val(true)).validate(&s),
            Err(UrelError::TypeError { .. })
        ));
        // The error is found inside connectives and under negation.
        let nested = Predicate::col_eq("SSN", 1i64)
            .and(Predicate::col_eq("NAME", 2i64).not())
            .or(Predicate::True);
        assert!(matches!(
            nested.validate(&s),
            Err(UrelError::TypeError { .. })
        ));
        // Unknown columns are reported as such, not as type errors.
        assert!(matches!(
            Predicate::col_eq("MISSING", 1i64).validate(&s),
            Err(UrelError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn columns_resolve_after_rename_and_projection() {
        use crate::algebra;
        use crate::relation::URelation;
        use crate::tuple::Tuple;
        use uprob_wsd::WsDescriptor;

        let mut r = URelation::new(schema());
        r.push(
            Tuple::new(vec![Value::Int(7), Value::str("Bill"), Value::Float(0.5)]),
            WsDescriptor::empty(),
        );
        // After a projection the surviving columns keep their names, so a
        // predicate written against the projected schema evaluates
        // identically below the projection (the pushdown invariant).
        let projected = algebra::project(&r, &["NAME", "SSN"], "P").unwrap();
        let p = Predicate::col_eq("NAME", "Bill").and(Predicate::col_eq("SSN", 7i64));
        let (pt, pd) = (&projected.rows()[0].0, projected.schema());
        assert!(p.eval(pd, pt).unwrap());
        assert!(p.eval(r.schema(), &r.rows()[0].0).unwrap());
        // A column dropped by the projection no longer resolves.
        assert!(matches!(
            Predicate::col_eq("SCORE", 0.5).eval(pd, pt),
            Err(UrelError::UnknownColumn { .. })
        ));
        // Renaming changes only the relation name: unqualified references
        // keep resolving, and the new name drives the qualified
        // `rel.column` names produced by a subsequent self-join concat.
        let renamed = algebra::rename(&r, "R2");
        assert!(p.eval(renamed.schema(), &renamed.rows()[0].0).unwrap());
        let concat = r.schema().concat(renamed.schema(), "J");
        assert!(concat.has_column("R2.SSN"));
        let joined = r.rows()[0].0.concat(&renamed.rows()[0].0);
        assert!(Predicate::cols_eq("SSN", "R2.SSN")
            .eval(&concat, &joined)
            .unwrap());
        assert!(matches!(
            Predicate::cols_eq("SSN", "R.SSN").eval(&concat, &joined),
            Err(UrelError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn conjunct_splitting_round_trips() {
        let a = Predicate::col_eq("NAME", "Bill");
        let b = Predicate::col_eq("SSN", 7i64);
        let c = Predicate::between("SCORE", 0.0, 1.0); // itself an AND
        let p = a.clone().and(b.clone().and(c.clone()));
        let conjuncts = p.clone().into_conjuncts();
        // `between` contributes its own two comparisons: nested ANDs
        // flatten completely.
        assert_eq!(conjuncts.len(), 4);
        let rebuilt = Predicate::conjoin(conjuncts);
        let s = schema();
        let t = tuple();
        assert_eq!(rebuilt.eval(&s, &t).unwrap(), p.eval(&s, &t).unwrap());
        // OR/NOT subtrees are conjunction-opaque.
        let q = a.clone().or(b.clone()).and(c.clone().not());
        assert_eq!(q.into_conjuncts().len(), 2);
        // TRUE vanishes, FALSE absorbs.
        assert_eq!(Predicate::True.into_conjuncts().len(), 0);
        assert_eq!(Predicate::conjoin(vec![]), Predicate::True);
        assert_eq!(
            Predicate::conjoin(vec![a.clone(), Predicate::False, b.clone()]),
            Predicate::False
        );
        assert_eq!(Predicate::conjoin(vec![Predicate::True, a.clone()]), a);
    }

    #[test]
    fn referenced_columns_and_renaming() {
        let p = Predicate::cols_eq("A", "B")
            .and(Predicate::col_eq("A", 1i64))
            .or(Predicate::col_eq("C", 2i64).not());
        assert_eq!(p.referenced_columns(), vec!["A", "B", "C"]);
        let map: FxHashMap<String, String> = [("A", "X"), ("B", "Y"), ("C", "Z")]
            .into_iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect();
        let renamed = p.rename_columns(&map).unwrap();
        assert_eq!(renamed.referenced_columns(), vec!["X", "Y", "Z"]);
        // A reference outside the map blocks the rewrite entirely.
        let partial: FxHashMap<String, String> =
            [("A".to_string(), "X".to_string())].into_iter().collect();
        assert!(p.rename_columns(&partial).is_none());
        assert_eq!(
            Predicate::True.rename_columns(&FxHashMap::default()),
            Some(Predicate::True)
        );
    }

    #[test]
    fn simplify_folds_trivial_connectives() {
        let a = Predicate::col_eq("NAME", "Bill");
        assert_eq!(a.clone().and(Predicate::True).simplify(), a);
        assert_eq!(
            Predicate::True.and(Predicate::False).simplify(),
            Predicate::False
        );
        assert_eq!(a.clone().and(Predicate::False).simplify(), Predicate::False);
        assert_eq!(a.clone().or(Predicate::True).simplify(), Predicate::True);
        assert_eq!(Predicate::False.or(a.clone()).simplify(), a);
        assert_eq!(Predicate::True.not().simplify(), Predicate::False);
        assert_eq!(a.clone().not().not().simplify(), a);
        // Nested folding reaches through the tree.
        let nested = Predicate::True
            .and(a.clone())
            .or(Predicate::False)
            .not()
            .not();
        assert_eq!(nested.simplify(), a);
    }

    #[test]
    fn display_is_readable() {
        let p = Predicate::col_eq("NAME", "Bill").and(Predicate::between("SSN", 1i64, 9i64));
        let text = p.to_string();
        assert!(text.contains("NAME = 'Bill'"));
        assert!(text.contains("SSN >= 1"));
        assert!(text.contains("AND"));
    }
}
