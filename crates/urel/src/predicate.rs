//! Selection and join predicates.
//!
//! Predicates are small expression trees over column references and
//! constants, evaluated against a tuple together with its schema. Join
//! conditions are ordinary predicates over the concatenated schema of the
//! two operands (see [`crate::Schema::concat`]).

use std::fmt;

use crate::error::UrelError;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use crate::Result;

/// A reference to a column by name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColumnRef {
    /// Column name as it appears in the schema the predicate is evaluated
    /// against.
    pub name: String,
}

/// A scalar expression: a column reference or a constant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// Reference to a column by name.
    Column(ColumnRef),
    /// A constant value.
    Const(Value),
}

impl Expr {
    /// Column reference expression.
    pub fn col(name: &str) -> Expr {
        Expr::Column(ColumnRef {
            name: name.to_string(),
        })
    }

    /// Constant expression.
    pub fn val(value: impl Into<Value>) -> Expr {
        Expr::Const(value.into())
    }

    /// Evaluates the expression against a tuple.
    pub fn eval(&self, schema: &Schema, tuple: &Tuple) -> Result<Value> {
        match self {
            Expr::Const(v) => Ok(v.clone()),
            Expr::Column(c) => {
                let idx = schema.column_index(&c.name)?;
                tuple
                    .get(idx)
                    .cloned()
                    .ok_or_else(|| UrelError::TupleSchemaMismatch {
                        relation: schema.name().to_string(),
                        detail: format!("tuple has no value at position {idx}"),
                    })
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{}", c.name),
            Expr::Const(Value::Str(s)) => write!(f, "'{s}'"),
            Expr::Const(v) => write!(f, "{v}"),
        }
    }
}

/// Comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Comparison {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl Comparison {
    fn apply(self, left: &Value, right: &Value) -> bool {
        // SQL-style: comparisons involving NULL are never satisfied.
        if left.is_null() || right.is_null() {
            return false;
        }
        let ord = left.cmp(right);
        match self {
            Comparison::Eq => ord == std::cmp::Ordering::Equal,
            Comparison::Ne => ord != std::cmp::Ordering::Equal,
            Comparison::Lt => ord == std::cmp::Ordering::Less,
            Comparison::Le => ord != std::cmp::Ordering::Greater,
            Comparison::Gt => ord == std::cmp::Ordering::Greater,
            Comparison::Ge => ord != std::cmp::Ordering::Less,
        }
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Comparison::Eq => "=",
            Comparison::Ne => "<>",
            Comparison::Lt => "<",
            Comparison::Le => "<=",
            Comparison::Gt => ">",
            Comparison::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// A Boolean predicate over one tuple.
#[derive(Clone, Debug, PartialEq)]
pub enum Predicate {
    /// Always true.
    True,
    /// Always false.
    False,
    /// Comparison of two scalar expressions.
    Cmp {
        /// Left operand.
        left: Expr,
        /// Operator.
        op: Comparison,
        /// Right operand.
        right: Expr,
    },
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `left op right`.
    pub fn cmp(left: Expr, op: Comparison, right: Expr) -> Predicate {
        Predicate::Cmp { left, op, right }
    }

    /// `column = constant`.
    pub fn col_eq(column: &str, value: impl Into<Value>) -> Predicate {
        Predicate::cmp(Expr::col(column), Comparison::Eq, Expr::val(value))
    }

    /// `left-column = right-column` (typical equi-join condition).
    pub fn cols_eq(left: &str, right: &str) -> Predicate {
        Predicate::cmp(Expr::col(left), Comparison::Eq, Expr::col(right))
    }

    /// `column BETWEEN low AND high` (inclusive).
    pub fn between(column: &str, low: impl Into<Value>, high: impl Into<Value>) -> Predicate {
        Predicate::cmp(Expr::col(column), Comparison::Ge, Expr::val(low)).and(Predicate::cmp(
            Expr::col(column),
            Comparison::Le,
            Expr::val(high),
        ))
    }

    /// Conjunction with another predicate.
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Disjunction with another predicate.
    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Predicate {
        Predicate::Not(Box::new(self))
    }

    /// Evaluates the predicate on a tuple.
    ///
    /// # Errors
    ///
    /// Returns an error if a referenced column does not exist.
    pub fn eval(&self, schema: &Schema, tuple: &Tuple) -> Result<bool> {
        match self {
            Predicate::True => Ok(true),
            Predicate::False => Ok(false),
            Predicate::Cmp { left, op, right } => {
                let l = left.eval(schema, tuple)?;
                let r = right.eval(schema, tuple)?;
                Ok(op.apply(&l, &r))
            }
            Predicate::And(a, b) => Ok(a.eval(schema, tuple)? && b.eval(schema, tuple)?),
            Predicate::Or(a, b) => Ok(a.eval(schema, tuple)? || b.eval(schema, tuple)?),
            Predicate::Not(p) => Ok(!p.eval(schema, tuple)?),
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => write!(f, "true"),
            Predicate::False => write!(f, "false"),
            Predicate::Cmp { left, op, right } => write!(f, "{left} {op} {right}"),
            Predicate::And(a, b) => write!(f, "({a} AND {b})"),
            Predicate::Or(a, b) => write!(f, "({a} OR {b})"),
            Predicate::Not(p) => write!(f, "NOT ({p})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;

    fn schema() -> Schema {
        Schema::new(
            "R",
            &[
                ("SSN", ColumnType::Int),
                ("NAME", ColumnType::Str),
                ("SCORE", ColumnType::Float),
            ],
        )
    }

    fn tuple() -> Tuple {
        Tuple::new(vec![Value::Int(7), Value::str("Bill"), Value::Float(0.5)])
    }

    #[test]
    fn comparisons() {
        let s = schema();
        let t = tuple();
        assert!(Predicate::col_eq("NAME", "Bill").eval(&s, &t).unwrap());
        assert!(!Predicate::col_eq("NAME", "John").eval(&s, &t).unwrap());
        assert!(
            Predicate::cmp(Expr::col("SSN"), Comparison::Gt, Expr::val(4i64))
                .eval(&s, &t)
                .unwrap()
        );
        assert!(
            Predicate::cmp(Expr::col("SSN"), Comparison::Le, Expr::val(7i64))
                .eval(&s, &t)
                .unwrap()
        );
        assert!(
            Predicate::cmp(Expr::col("SSN"), Comparison::Ne, Expr::val(4i64))
                .eval(&s, &t)
                .unwrap()
        );
        assert!(
            !Predicate::cmp(Expr::col("SSN"), Comparison::Lt, Expr::val(7i64))
                .eval(&s, &t)
                .unwrap()
        );
    }

    #[test]
    fn boolean_connectives() {
        let s = schema();
        let t = tuple();
        let p = Predicate::col_eq("NAME", "Bill").and(Predicate::col_eq("SSN", 7i64));
        assert!(p.eval(&s, &t).unwrap());
        let q = Predicate::col_eq("NAME", "John").or(Predicate::col_eq("SSN", 7i64));
        assert!(q.eval(&s, &t).unwrap());
        assert!(!q.clone().not().eval(&s, &t).unwrap());
        assert!(Predicate::True.eval(&s, &t).unwrap());
        assert!(!Predicate::False.eval(&s, &t).unwrap());
    }

    #[test]
    fn between_is_inclusive() {
        let s = schema();
        let t = tuple();
        assert!(Predicate::between("SCORE", 0.5, 0.8).eval(&s, &t).unwrap());
        assert!(Predicate::between("SCORE", 0.0, 0.5).eval(&s, &t).unwrap());
        assert!(!Predicate::between("SCORE", 0.6, 0.8).eval(&s, &t).unwrap());
    }

    #[test]
    fn null_comparisons_are_false() {
        let s = schema();
        let t = Tuple::new(vec![Value::Null, Value::str("Bill"), Value::Float(0.5)]);
        assert!(!Predicate::col_eq("SSN", 7i64).eval(&s, &t).unwrap());
        assert!(
            !Predicate::cmp(Expr::col("SSN"), Comparison::Ne, Expr::val(7i64))
                .eval(&s, &t)
                .unwrap()
        );
    }

    #[test]
    fn unknown_column_is_an_error() {
        let s = schema();
        let t = tuple();
        assert!(Predicate::col_eq("MISSING", 1i64).eval(&s, &t).is_err());
    }

    #[test]
    fn cols_eq_compares_two_columns() {
        let s = Schema::new("J", &[("A", ColumnType::Int), ("B", ColumnType::Int)]);
        let equal = Tuple::new(vec![Value::Int(3), Value::Int(3)]);
        let differ = Tuple::new(vec![Value::Int(3), Value::Int(4)]);
        let p = Predicate::cols_eq("A", "B");
        assert!(p.eval(&s, &equal).unwrap());
        assert!(!p.eval(&s, &differ).unwrap());
    }

    #[test]
    fn display_is_readable() {
        let p = Predicate::col_eq("NAME", "Bill").and(Predicate::between("SSN", 1i64, 9i64));
        let text = p.to_string();
        assert!(text.contains("NAME = 'Bill'"));
        assert!(text.contains("SSN >= 1"));
        assert!(text.contains("AND"));
    }
}
