//! Error type for the U-relation layer.

use std::fmt;

use uprob_wsd::WsdError;

/// Errors raised when building or querying U-relational databases.
#[derive(Debug, Clone, PartialEq)]
pub enum UrelError {
    /// A column name was not found in a schema.
    UnknownColumn {
        /// The relation whose schema was searched.
        relation: String,
        /// The missing column name.
        column: String,
    },
    /// A relation name was not found in the database.
    UnknownRelation {
        /// The missing relation name.
        relation: String,
    },
    /// A relation with this name already exists.
    DuplicateRelation {
        /// The duplicated relation name.
        relation: String,
    },
    /// A tuple does not match the schema (wrong arity or value types).
    TupleSchemaMismatch {
        /// The relation being populated.
        relation: String,
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// Two schemas were expected to be union-compatible but are not.
    SchemaMismatch {
        /// Left relation name.
        left: String,
        /// Right relation name.
        right: String,
    },
    /// A predicate was evaluated against a value of the wrong type.
    TypeError {
        /// Human-readable description.
        detail: String,
    },
    /// An error bubbled up from the world-set descriptor layer.
    Wsd(WsdError),
}

impl fmt::Display for UrelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UrelError::UnknownColumn { relation, column } => {
                write!(f, "relation '{relation}' has no column '{column}'")
            }
            UrelError::UnknownRelation { relation } => {
                write!(f, "no relation named '{relation}' in the database")
            }
            UrelError::DuplicateRelation { relation } => {
                write!(f, "a relation named '{relation}' already exists")
            }
            UrelError::TupleSchemaMismatch { relation, detail } => {
                write!(f, "tuple does not match schema of '{relation}': {detail}")
            }
            UrelError::SchemaMismatch { left, right } => {
                write!(
                    f,
                    "schemas of '{left}' and '{right}' are not union-compatible"
                )
            }
            UrelError::TypeError { detail } => write!(f, "type error: {detail}"),
            UrelError::Wsd(e) => write!(f, "world-set descriptor error: {e}"),
        }
    }
}

impl std::error::Error for UrelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            UrelError::Wsd(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WsdError> for UrelError {
    fn from(e: WsdError) -> Self {
        UrelError::Wsd(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uprob_wsd::VarId;

    #[test]
    fn display_and_source() {
        let e = UrelError::UnknownColumn {
            relation: "R".into(),
            column: "X".into(),
        };
        assert!(e.to_string().contains("'X'"));

        let wrapped: UrelError = WsdError::UnknownVariable { var: VarId(1) }.into();
        assert!(wrapped.to_string().contains("world-set descriptor"));
        use std::error::Error;
        assert!(wrapped.source().is_some());
    }
}
