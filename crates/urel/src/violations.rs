//! Plan builders for constraint **violation queries**.
//!
//! The paper compiles an integrity constraint into the Boolean query whose
//! answer ws-set is the set of worlds *violating* the constraint
//! (Example 2.3: the FD self-join). This module constructs those queries
//! as logical [`Plan`]s, so constraint checking runs through
//! [`crate::ProbDb::query`] — the rule-based optimizer plus the pipelined
//! hash-join executor — instead of hand-rolled nested loops:
//!
//! * [`fd_violation_plan`]: the self-join of Example 2.3 generalised to
//!   multi-column determinants/dependents,
//! * [`row_filter_violation_plan`]: `σ_{¬φ}(R)` projected to the nullary
//!   schema,
//! * [`denial_constraint_plan`]: a cross-relation conjunctive query whose
//!   non-emptiness marks a violating world (the optimizer recognises the
//!   equality conjuncts and plans hash joins).
//!
//! All builders are pure AST constructors: they neither validate against a
//! database nor execute anything. Validation happens where it always does,
//! in [`crate::Plan::output_schema`], so a malformed constraint fails
//! identically on every execution path.
//!
//! ## NULL semantics of the FD violation query
//!
//! Comparisons follow the SQL rule (a comparison involving NULL is never
//! satisfied), which fixes the constraint semantics:
//!
//! * **determinants**: two tuples "agree" on the determinant only when
//!   every determinant value is non-NULL and equal — rows with a NULL
//!   determinant value never witness a violation (they are dropped by the
//!   hash join exactly as the equality predicate would drop them);
//! * **dependents**: a pair *disagrees* on a dependent column unless the
//!   two values are **provably equal**, i.e. the disagreement predicate is
//!   `¬(a = b)`, which is satisfied when the values differ *and* when
//!   either is NULL. An unknown dependent value cannot certify the FD, so
//!   it violates — including the degenerate self-pair: a single tuple with
//!   a fully non-NULL determinant and a NULL dependent violates the FD on
//!   its own.
//!
//! The eager constraint compiler in `uprob-query` implements the same
//! rules tuple-by-tuple; the differential suite pins the agreement.

use crate::plan::Plan;
use crate::predicate::Predicate;

/// The alias under which violation self-joins scan the second copy of the
/// constrained relation; qualified column references are
/// `"<alias>.<column>"` (see [`crate::Schema::concat`]).
pub const FD_SELF_JOIN_ALIAS: &str = "rhs";

/// The violation query of the functional dependency
/// `relation: determinant → dependent` (Example 2.3 generalised): a
/// self-join pairing tuples that agree on every determinant column and are
/// not provably equal on some dependent column, projected to the nullary
/// (Boolean) schema. See the module docs for the NULL semantics.
///
/// The second copy of the relation is renamed to [`FD_SELF_JOIN_ALIAS`],
/// so its columns are the qualified `"rhs.<column>"` names.
pub fn fd_violation_plan(relation: &str, determinant: &[String], dependent: &[String]) -> Plan {
    let rhs = |column: &str| format!("{FD_SELF_JOIN_ALIAS}.{column}");
    let agreement = Predicate::conjoin(
        determinant
            .iter()
            .map(|column| Predicate::cols_eq(column, &rhs(column))),
    );
    // Disagreement = not provably equal on some dependent column; the
    // empty disjunction is FALSE (an FD with no dependents cannot be
    // violated, and the optimizer prunes the trivially false join).
    let mut disagreement: Option<Predicate> = None;
    for column in dependent {
        let not_equal = Predicate::cols_eq(column, &rhs(column)).not();
        disagreement = Some(match disagreement {
            None => not_equal,
            Some(acc) => acc.or(not_equal),
        });
    }
    let disagreement = disagreement.unwrap_or(Predicate::False);
    Plan::scan(relation)
        .join_on(
            Plan::scan(relation).rename(FD_SELF_JOIN_ALIAS),
            agreement.and(disagreement),
        )
        .project(&[])
}

/// The violation query of a row-level predicate constraint: the worlds
/// containing a tuple that does **not** satisfy `predicate`
/// (`π_∅(σ_{¬φ}(R))`). Under the SQL comparison rule a NULL-involving
/// comparison is unsatisfied, so a row whose values make `φ` unknown
/// violates the constraint — the filter cannot certify it.
pub fn row_filter_violation_plan(relation: &str, predicate: &Predicate) -> Plan {
    Plan::scan(relation)
        .select(predicate.clone().not())
        .project(&[])
}

/// The violation query of a denial constraint: the conjunctive query over
/// `atoms` (each a `(relation, alias)` pair, scanned and renamed in
/// order) filtered by `condition`, projected to the nullary schema. A
/// world violates the constraint iff the query is non-empty there.
///
/// The atoms are combined with cross products and the condition applied
/// on top; [`crate::optimize_plan`] pushes the condition down and turns
/// equality conjuncts into pipelined hash joins, so a denial constraint
/// checks at hash-join speed without the builder doing any planning of
/// its own. Column references in `condition` follow the concatenation
/// convention of [`crate::Schema::concat`]: a column unique across the
/// atoms keeps its plain name, a clashing one is `"<alias>.<column>"`
/// (qualified by the alias of the atom it belongs to, for every atom
/// after the first).
///
/// # Panics
///
/// Panics if `atoms` is empty (an atomless conjunctive query has no
/// meaning); the constraint layer validates this before calling.
pub fn denial_constraint_plan(atoms: &[(String, String)], condition: &Predicate) -> Plan {
    let mut iter = atoms.iter();
    // uprob-lint: allow(panic-expect) -- documented panic contract: the constraint layer rejects atomless constraints
    let (first_relation, first_alias) = iter.next().expect("a denial constraint has atoms");
    let mut plan = Plan::scan(first_relation).rename(first_alias);
    for (relation, alias) in iter {
        plan = plan.product(Plan::scan(relation).rename(alias));
    }
    plan.select(condition.clone()).project(&[])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::tests::ssn_db;
    use crate::plan::execute_plan_eager;
    use crate::predicate::{Comparison, Expr};

    #[test]
    fn fd_violation_plan_reproduces_example_2_3() {
        let db = ssn_db();
        let plan = fd_violation_plan("R", &["SSN".to_string()], &["NAME".to_string()]);
        assert_eq!(plan.output_schema(&db).unwrap().arity(), 0);
        // {{j->7, b->7}} with probability .56 — both execution paths.
        for answer in [
            db.query(&plan).unwrap(),
            execute_plan_eager(&db, &plan).unwrap(),
        ] {
            let ws = answer.answer_ws_set().normalized();
            assert_eq!(ws.len(), 1);
            assert!((ws.descriptors()[0].probability(db.world_table()) - 0.56).abs() < 1e-12);
        }
    }

    #[test]
    fn fd_plan_with_no_dependents_is_trivially_satisfied() {
        let db = ssn_db();
        let plan = fd_violation_plan("R", &["SSN".to_string()], &[]);
        assert!(db.query(&plan).unwrap().is_empty());
    }

    #[test]
    fn row_filter_violation_selects_the_complement() {
        let db = ssn_db();
        let predicate = Predicate::cmp(Expr::col("SSN"), Comparison::Lt, Expr::val(7i64));
        let plan = row_filter_violation_plan("R", &predicate);
        // Two of the four tuples have SSN 7.
        assert_eq!(db.query(&plan).unwrap().len(), 2);
    }

    #[test]
    fn denial_constraint_plan_builds_the_conjunctive_query() {
        let db = ssn_db();
        // "No two co-existing tuples share an SSN with different names" as
        // a denial constraint — same worlds as the FD violation query.
        let atoms = vec![
            ("R".to_string(), "a".to_string()),
            ("R".to_string(), "b".to_string()),
        ];
        let condition = Predicate::cols_eq("SSN", "b.SSN").and(Predicate::cmp(
            Expr::col("NAME"),
            Comparison::Ne,
            Expr::col("b.NAME"),
        ));
        let plan = denial_constraint_plan(&atoms, &condition);
        let ws = db.query(&plan).unwrap().answer_ws_set().normalized();
        assert_eq!(ws.len(), 1);
        assert!((ws.descriptors()[0].probability(db.world_table()) - 0.56).abs() < 1e-12);
    }
}
