//! The pipelined plan executor.
//!
//! [`execute_plan`] validates a [`Plan`] once, compiles every predicate
//! down to positional form (column names are resolved against the operator
//! schemas exactly once, not per row), and then **streams**
//! `(tuple, ws-descriptor)` rows between operators instead of
//! materializing an intermediate U-relation per node:
//!
//! * selection, projection, rename, union and distinct are fully
//!   streaming — a row flows from the scan to the output without ever
//!   being parked in an intermediate relation;
//! * a join materializes only its **right (build) side** into a hash
//!   table keyed on the equi-join columns extracted from the join
//!   condition, then streams the left (probe) side through it — the
//!   classical hash join. A join condition without cross-side equality
//!   conjuncts falls back to a block nested loop over the materialized
//!   right side;
//! * descriptor consistency (`ψ` in the paper's
//!   `U_R ⋈_{φ ∧ ψ} U_S`) is checked with the allocation-free merge scan
//!   *before* the residual predicate, and the descriptor union is built
//!   only for emitted rows.
//!
//! Rows are emitted in exactly the order of the eager reference
//! interpreter ([`crate::execute_plan_eager`]): every streaming operator
//! is order-preserving and the hash join probes in left-row order with
//! build rows bucketed in input order, so even the per-tuple ws-sets of
//! the answer come out in the same descriptor order — which is what makes
//! the exact confidence of a planned answer **bit-identical** to the eager
//! path (see `tests/plan_equivalence.rs` and the golden strategy tests).
//!
//! NULL semantics: a comparison involving NULL is never satisfied, so rows
//! with a NULL equi-join key on either side are dropped by the hash join —
//! exactly what evaluating the equality predicate would do.

use uprob_wsd::{FxHashMap, FxHashSet};

use uprob_wsd::WsDescriptor;

use crate::database::ProbDb;
use crate::plan::Plan;
use crate::predicate::{Comparison, Expr, Predicate};
use crate::relation::URelation;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use crate::Result;

/// A streamed row: the tuple plus its ws-descriptor.
type Row = (Tuple, WsDescriptor);
type RowStream<'a> = Box<dyn Iterator<Item = Row> + 'a>;

/// Executes `plan` against `db` with the pipelined executor (no
/// optimization; [`ProbDb::query`] optimizes first). The output relation
/// carries the plan's [`Plan::output_schema`].
///
/// # Errors
///
/// Returns plan-validation errors (unknown relations/columns, predicate
/// type errors, union incompatibility). Execution itself cannot fail once
/// validation passed: predicates are compiled to positional form.
pub fn execute_plan(db: &ProbDb, plan: &Plan) -> Result<URelation> {
    // One full validation pass (schema resolution + predicate type
    // checking); compile() then recomputes each node's schema exactly once,
    // bottom-up, without re-validating subtrees.
    let schema = plan.output_schema(db)?;
    let (_, stream) = compile(db, plan)?;
    let mut out = URelation::new(schema);
    for (tuple, descriptor) in stream {
        out.push(tuple, descriptor);
    }
    Ok(out)
}

/// A predicate with all column references resolved to tuple positions:
/// evaluation is infallible and allocation-free.
enum CompiledPredicate {
    True,
    False,
    Cmp {
        left: CompiledExpr,
        op: Comparison,
        right: CompiledExpr,
    },
    And(Box<CompiledPredicate>, Box<CompiledPredicate>),
    Or(Box<CompiledPredicate>, Box<CompiledPredicate>),
    Not(Box<CompiledPredicate>),
}

enum CompiledExpr {
    Column(usize),
    Const(Value),
}

impl CompiledExpr {
    fn compile(expr: &Expr, schema: &Schema) -> Result<CompiledExpr> {
        Ok(match expr {
            Expr::Const(v) => CompiledExpr::Const(v.clone()),
            Expr::Column(c) => CompiledExpr::Column(schema.column_index(&c.name)?),
        })
    }

    fn eval<'a>(&'a self, tuple: &'a Tuple) -> &'a Value {
        match self {
            CompiledExpr::Const(v) => v,
            // uprob-lint: allow(panic-expect) -- column positions were validated against this schema at compile time
            CompiledExpr::Column(i) => tuple.get(*i).expect("validated column position"),
        }
    }
}

impl CompiledPredicate {
    fn compile(predicate: &Predicate, schema: &Schema) -> Result<CompiledPredicate> {
        Ok(match predicate {
            Predicate::True => CompiledPredicate::True,
            Predicate::False => CompiledPredicate::False,
            Predicate::Cmp { left, op, right } => CompiledPredicate::Cmp {
                left: CompiledExpr::compile(left, schema)?,
                op: *op,
                right: CompiledExpr::compile(right, schema)?,
            },
            Predicate::And(a, b) => CompiledPredicate::And(
                Box::new(CompiledPredicate::compile(a, schema)?),
                Box::new(CompiledPredicate::compile(b, schema)?),
            ),
            Predicate::Or(a, b) => CompiledPredicate::Or(
                Box::new(CompiledPredicate::compile(a, schema)?),
                Box::new(CompiledPredicate::compile(b, schema)?),
            ),
            Predicate::Not(p) => {
                CompiledPredicate::Not(Box::new(CompiledPredicate::compile(p, schema)?))
            }
        })
    }

    fn eval(&self, tuple: &Tuple) -> bool {
        match self {
            CompiledPredicate::True => true,
            CompiledPredicate::False => false,
            CompiledPredicate::Cmp { left, op, right } => {
                op.apply(left.eval(tuple), right.eval(tuple))
            }
            CompiledPredicate::And(a, b) => a.eval(tuple) && b.eval(tuple),
            CompiledPredicate::Or(a, b) => a.eval(tuple) || b.eval(tuple),
            CompiledPredicate::Not(p) => !p.eval(tuple),
        }
    }

    fn is_true(&self) -> bool {
        matches!(self, CompiledPredicate::True)
    }
}

/// Compiles a plan node into its output schema and row stream. Each
/// node's schema is computed exactly once, bottom-up (the full-tree
/// validation already happened in [`execute_plan`]).
fn compile<'a>(db: &'a ProbDb, plan: &'a Plan) -> Result<(Schema, RowStream<'a>)> {
    Ok(match plan {
        Plan::Scan { relation } => {
            let rel = db.relation(relation)?;
            (
                rel.schema().clone(),
                Box::new(rel.iter().map(|(t, d)| (t.clone(), d.clone()))),
            )
        }
        Plan::Empty { schema } => (schema.clone(), Box::new(std::iter::empty())),
        Plan::Select { input, predicate } => {
            // Fused select-over-scan: evaluate on the borrowed row and
            // clone survivors only (a plain scan clones every row before
            // the filter would drop it).
            if let Plan::Scan { relation } = input.as_ref() {
                let rel = db.relation(relation)?;
                let schema = rel.schema().clone();
                let compiled = CompiledPredicate::compile(predicate, &schema)?;
                (
                    schema,
                    Box::new(
                        rel.iter()
                            .filter(move |(t, _)| compiled.eval(t))
                            .map(|(t, d)| (t.clone(), d.clone())),
                    ),
                )
            } else {
                let (schema, stream) = compile(db, input)?;
                let compiled = CompiledPredicate::compile(predicate, &schema)?;
                (
                    schema,
                    Box::new(stream.filter(move |(t, _)| compiled.eval(t))),
                )
            }
        }
        Plan::Project { input, columns } => {
            let (schema, stream) = compile(db, input)?;
            let positions: Vec<usize> = columns
                .iter()
                .map(|c| schema.column_index(c))
                .collect::<Result<_>>()?;
            let names: Vec<&str> = columns.iter().map(String::as_str).collect();
            let projected = schema.project(&names, schema.name())?;
            (
                projected,
                Box::new(stream.map(move |(t, d)| (t.project(&positions), d))),
            )
        }
        Plan::Join {
            left,
            right,
            predicate,
        } => compile_join(db, left, right, predicate)?,
        Plan::Product { left, right } => compile_join(db, left, right, &Predicate::True)?,
        Plan::Union { left, right } => {
            let (ls, l) = compile(db, left)?;
            let (rs, r) = compile(db, right)?;
            ls.check_union_compatible(&rs)?;
            (ls, Box::new(l.chain(r)))
        }
        Plan::Rename { input, name } => {
            let (schema, stream) = compile(db, input)?;
            (schema.renamed(name), stream)
        }
        Plan::Distinct { input } => {
            let (schema, stream) = compile(db, input)?;
            let mut seen: FxHashSet<Row> = FxHashSet::default();
            (
                schema,
                Box::new(stream.filter(move |row| seen.insert(row.clone()))),
            )
        }
    })
}

/// Compiles a join: splits the condition into cross-side equality conjuncts
/// (the hash keys) and a compiled residual, materializes the right (build)
/// side, and streams the left (probe) side through it.
fn compile_join<'a>(
    db: &'a ProbDb,
    left: &'a Plan,
    right: &'a Plan,
    predicate: &Predicate,
) -> Result<(Schema, RowStream<'a>)> {
    let (left_schema, left_stream) = compile(db, left)?;
    let (right_schema, right_stream) = compile(db, right)?;
    let concat = left_schema.concat(&right_schema, left_schema.name());
    let left_arity = left_schema.arity();

    // Extract `left-column = right-column` conjuncts as hash keys.
    let mut left_keys: Vec<usize> = Vec::new();
    let mut right_keys: Vec<usize> = Vec::new();
    let mut residual: Vec<Predicate> = Vec::new();
    for conjunct in predicate.clone().into_conjuncts() {
        if let Predicate::Cmp {
            left: Expr::Column(a),
            op: Comparison::Eq,
            right: Expr::Column(b),
        } = &conjunct
        {
            let ia = concat.column_index(&a.name)?;
            let ib = concat.column_index(&b.name)?;
            if ia < left_arity && ib >= left_arity {
                left_keys.push(ia);
                right_keys.push(ib - left_arity);
                continue;
            }
            if ib < left_arity && ia >= left_arity {
                left_keys.push(ib);
                right_keys.push(ia - left_arity);
                continue;
            }
        }
        residual.push(conjunct);
    }
    let residual = CompiledPredicate::compile(&Predicate::conjoin(residual), &concat)?;

    let right_rows: Vec<Row> = right_stream.collect();

    if left_keys.is_empty() {
        // No equi-join keys: block nested loop over the materialized right
        // side (identical pair order to the eager reference).
        return Ok((
            concat,
            Box::new(left_stream.flat_map(move |(lt, ld)| {
                let mut out = Vec::new();
                for (rt, rd) in &right_rows {
                    if !ld.is_consistent_with(rd) {
                        continue;
                    }
                    let tuple = lt.concat(rt);
                    if residual.eval(&tuple) {
                        let descriptor = ld
                            .union(rd)
                            // uprob-lint: allow(panic-expect) -- the `is_consistent_with` filter above guarantees the union exists
                            .expect("consistent descriptors always have a union");
                        out.push((tuple, descriptor));
                    }
                }
                out
            })),
        ));
    }

    // Hash join: bucket the build side by key. Rows with a NULL key value
    // can never satisfy the equality conjuncts and are dropped up front.
    let mut table: FxHashMap<Vec<Value>, Vec<Row>> = FxHashMap::default();
    for (rt, rd) in right_rows {
        if let Some(key) = key_of(&rt, &right_keys) {
            table.entry(key).or_default().push((rt, rd));
        }
    }
    let residual_is_true = residual.is_true();
    Ok((
        concat,
        Box::new(left_stream.flat_map(move |(lt, ld)| {
            let mut out = Vec::new();
            if let Some(key) = key_of(&lt, &left_keys) {
                if let Some(bucket) = table.get(&key) {
                    out.reserve(bucket.len());
                    for (rt, rd) in bucket {
                        if !ld.is_consistent_with(rd) {
                            continue;
                        }
                        let tuple = lt.concat(rt);
                        if residual_is_true || residual.eval(&tuple) {
                            let descriptor = ld
                                .union(rd)
                                // uprob-lint: allow(panic-expect) -- the `is_consistent_with` filter above guarantees the union exists
                                .expect("consistent descriptors always have a union");
                            out.push((tuple, descriptor));
                        }
                    }
                }
            }
            out
        })),
    ))
}

/// The hash key of a tuple on the given positions; `None` if any key value
/// is NULL (such rows never match an equality).
fn key_of(tuple: &Tuple, positions: &[usize]) -> Option<Vec<Value>> {
    let mut key = Vec::with_capacity(positions.len());
    for &p in positions {
        // uprob-lint: allow(panic-expect) -- key positions were resolved against the schema when the join was built
        let v = tuple.get(p).expect("validated key position");
        if v.is_null() {
            return None;
        }
        key.push(v.clone());
    }
    Some(key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::execute_plan_eager;
    use crate::schema::ColumnType;
    use uprob_wsd::WorldTable;

    type RelationSpec<'a> = (&'a str, Vec<(&'a str, ColumnType)>, Vec<Vec<Value>>);

    fn db_with(relations: Vec<RelationSpec<'_>>) -> ProbDb {
        let mut table = WorldTable::new();
        let x = table.add_variable("x", &[(0, 0.5), (1, 0.5)]).unwrap();
        let mut db = ProbDb::with_world_table(table);
        for (i, (name, cols, rows)) in relations.into_iter().enumerate() {
            let schema = Schema::new(name, &cols);
            let mut rel = db.create_relation(schema).unwrap();
            for (j, values) in rows.into_iter().enumerate() {
                // Alternate descriptors so some pairs are inconsistent.
                let d = if (i + j) % 3 == 0 {
                    WsDescriptor::from_pairs(db.world_table(), &[(x, ((i + j) / 3 % 2) as i64)])
                        .unwrap()
                } else {
                    WsDescriptor::empty()
                };
                rel.push(Tuple::new(values), d);
            }
            db.insert_relation(rel).unwrap();
        }
        db
    }

    fn check_matches_eager(db: &ProbDb, plan: &Plan) -> URelation {
        let eager = execute_plan_eager(db, plan).unwrap();
        let pipelined = execute_plan(db, plan).unwrap();
        assert_eq!(eager.schema(), pipelined.schema());
        assert_eq!(
            eager.rows(),
            pipelined.rows(),
            "pipelined row stream must match the eager reference in order:\n{plan}"
        );
        pipelined
    }

    fn int_rows(rows: &[&[i64]]) -> Vec<Vec<Value>> {
        rows.iter()
            .map(|r| r.iter().map(|&v| Value::Int(v)).collect())
            .collect()
    }

    #[test]
    fn hash_join_matches_nested_loop() {
        let db = db_with(vec![
            (
                "R",
                vec![("A", ColumnType::Int), ("B", ColumnType::Int)],
                int_rows(&[&[1, 10], &[2, 20], &[3, 20], &[4, 99]]),
            ),
            (
                "S",
                vec![("B", ColumnType::Int), ("C", ColumnType::Int)],
                int_rows(&[&[10, 100], &[20, 200], &[20, 300], &[77, 400]]),
            ),
        ]);
        let plan = Plan::scan("R").join_on(Plan::scan("S"), Predicate::cols_eq("B", "S.B"));
        let out = check_matches_eager(&db, &plan);
        assert!(!out.is_empty());
        // With a residual on top of the keys.
        let plan = Plan::scan("R").join_on(
            Plan::scan("S"),
            Predicate::cols_eq("B", "S.B").and(Predicate::cmp(
                Expr::col("C"),
                Comparison::Lt,
                Expr::val(250i64),
            )),
        );
        check_matches_eager(&db, &plan);
        // Pure theta join: nested-loop fallback.
        let plan = Plan::scan("R").join_on(
            Plan::scan("S"),
            Predicate::cmp(Expr::col("A"), Comparison::Lt, Expr::col("C")),
        );
        check_matches_eager(&db, &plan);
        // Product.
        check_matches_eager(&db, &Plan::scan("R").product(Plan::scan("S")));
    }

    #[test]
    fn null_keys_never_match() {
        let db = db_with(vec![
            (
                "R",
                vec![("A", ColumnType::Int), ("B", ColumnType::Int)],
                vec![
                    vec![Value::Int(1), Value::Null],
                    vec![Value::Int(2), Value::Int(20)],
                ],
            ),
            (
                "S",
                vec![("B", ColumnType::Int), ("C", ColumnType::Int)],
                vec![
                    vec![Value::Null, Value::Int(100)],
                    vec![Value::Int(20), Value::Int(200)],
                ],
            ),
        ]);
        let plan = Plan::scan("R").join_on(Plan::scan("S"), Predicate::cols_eq("B", "S.B"));
        let out = check_matches_eager(&db, &plan);
        assert_eq!(out.len(), 1, "only the non-NULL 20 = 20 pair matches");
    }

    #[test]
    fn streaming_operators_match_eager() {
        let db = db_with(vec![
            (
                "R",
                vec![("A", ColumnType::Int), ("B", ColumnType::Int)],
                int_rows(&[&[1, 10], &[2, 20], &[2, 20], &[3, 30]]),
            ),
            (
                "S",
                vec![("X", ColumnType::Int), ("Y", ColumnType::Int)],
                int_rows(&[&[2, 20], &[9, 90]]),
            ),
        ]);
        for plan in [
            Plan::scan("R").select(Predicate::col_eq("A", 2i64)),
            Plan::scan("R").project(&["B"]),
            Plan::scan("R").project(&[]),
            Plan::scan("R").union(Plan::scan("S")),
            Plan::scan("R").rename("Z"),
            Plan::scan("R").distinct(),
            Plan::scan("R")
                .union(Plan::scan("S"))
                .distinct()
                .select(Predicate::cmp(
                    Expr::col("A"),
                    Comparison::Ge,
                    Expr::val(2i64),
                ))
                .project(&["B", "A"]),
            Plan::empty(Schema::new("E", &[("A", ColumnType::Int)])),
        ] {
            check_matches_eager(&db, &plan);
        }
    }

    #[test]
    fn self_join_with_shared_variables() {
        // Descriptor-inconsistent pairs must be dropped identically.
        let db = db_with(vec![(
            "R",
            vec![("A", ColumnType::Int)],
            int_rows(&[&[1], &[1], &[2], &[1]]),
        )]);
        let plan = Plan::scan("R").join_on(
            Plan::scan("R").rename("R2"),
            Predicate::cols_eq("A", "R2.A"),
        );
        check_matches_eager(&db, &plan);
    }

    #[test]
    fn validation_errors_match_eager_path() {
        let db = db_with(vec![("R", vec![("A", ColumnType::Int)], int_rows(&[&[1]]))]);
        for plan in [
            Plan::scan("NOPE"),
            Plan::scan("R").select(Predicate::col_eq("MISSING", 1i64)),
            Plan::scan("R").project(&["MISSING"]),
            Plan::scan("R").select(Predicate::col_eq("A", "one")),
        ] {
            let eager = execute_plan_eager(&db, &plan);
            let pipelined = execute_plan(&db, &plan);
            assert!(pipelined.is_err());
            match (eager, pipelined) {
                (Err(a), Err(b)) => {
                    assert_eq!(std::mem::discriminant(&a), std::mem::discriminant(&b))
                }
                _ => panic!("both paths must fail"),
            }
        }
    }
}
