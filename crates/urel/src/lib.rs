//! # uprob-urel — U-relations and positive relational algebra
//!
//! This crate implements the probabilistic database model of
//! *Conditioning Probabilistic Databases* (Koch & Olteanu, VLDB 2008),
//! Section 2:
//!
//! * relational [`Value`]s, [`Tuple`]s and [`Schema`]s,
//! * [`URelation`]s: relations in which every tuple carries a world-set
//!   descriptor over a shared [`uprob_wsd::WorldTable`],
//! * [`ProbDb`]: a probabilistic database (a world table plus a set of
//!   U-relations) with possible-world semantics,
//! * the **positive relational algebra** on U-relations: selection,
//!   projection, join (with the ws-descriptor consistency condition),
//!   cross product, union and tuple-possibility helpers,
//! * **logical query plans** over that algebra: the [`Plan`] AST, the
//!   rule-based [`optimize_plan`] rewriter (predicate/projection pushdown,
//!   select-product → join recognition, trivial-predicate and
//!   empty-relation pruning) and the pipelined [`execute_plan`] executor
//!   with hash equi-joins — run end-to-end via [`ProbDb::query`],
//! * the constraint **violation-plan builders** ([`violations`]): FD/key
//!   self-joins, row-filter complements and denial-constraint
//!   conjunctive queries as plans.
//!
//! The query/constraint layer (`uprob-query`) and the confidence /
//! conditioning algorithms (`uprob-core`) are built on top of this crate.
//!
//! ## Example
//!
//! The database of Figure 2 of the paper:
//!
//! ```
//! use uprob_urel::{ProbDb, Schema, ColumnType, Value, Tuple};
//! use uprob_wsd::WsDescriptor;
//!
//! let mut db = ProbDb::new();
//! let j = db.world_table_mut().add_variable("j", &[(1, 0.2), (7, 0.8)]).unwrap();
//! let b = db.world_table_mut().add_variable("b", &[(4, 0.3), (7, 0.7)]).unwrap();
//!
//! let schema = Schema::new("R", &[("SSN", ColumnType::Int), ("NAME", ColumnType::Str)]);
//! let mut r = db.create_relation(schema).unwrap();
//! {
//!     let w = db.world_table();
//!     r.push(Tuple::new(vec![Value::Int(1), Value::str("John")]),
//!            WsDescriptor::from_pairs(w, &[(j, 1)]).unwrap());
//!     r.push(Tuple::new(vec![Value::Int(7), Value::str("John")]),
//!            WsDescriptor::from_pairs(w, &[(j, 7)]).unwrap());
//!     r.push(Tuple::new(vec![Value::Int(4), Value::str("Bill")]),
//!            WsDescriptor::from_pairs(w, &[(b, 4)]).unwrap());
//!     r.push(Tuple::new(vec![Value::Int(7), Value::str("Bill")]),
//!            WsDescriptor::from_pairs(w, &[(b, 7)]).unwrap());
//! }
//! db.insert_relation(r).unwrap();
//! assert_eq!(db.relation("R").unwrap().len(), 4);
//! assert_eq!(db.world_table().world_count(), Some(4));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algebra;
pub mod database;
pub mod delta;
pub mod error;
pub mod exec;
pub mod optimizer;
pub mod plan;
pub mod predicate;
pub mod relation;
pub mod schema;
pub mod tuple;
pub mod value;
pub mod violations;

pub use database::ProbDb;
pub use delta::{DeltaBuilder, DeltaReport};
pub use error::UrelError;
pub use exec::execute_plan;
pub use optimizer::optimize_plan;
pub use plan::{execute_plan_eager, Plan};
pub use predicate::{ColumnRef, Comparison, Expr, Predicate};
pub use relation::URelation;
pub use schema::{Column, ColumnType, Schema};
pub use tuple::Tuple;
pub use value::Value;
pub use violations::{
    denial_constraint_plan, fd_violation_plan, row_filter_violation_plan, FD_SELF_JOIN_ALIAS,
};

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, UrelError>;
