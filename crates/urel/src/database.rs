//! Probabilistic databases: a world table plus a set of U-relations.

use std::collections::BTreeMap;
use std::fmt;

use uprob_wsd::{ValueIndex, WorldTable, WsDescriptor};

use crate::error::UrelError;
use crate::relation::URelation;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::Result;

/// A probabilistic database over a set of schemas and a world table
/// (Section 2): it represents one deterministic database per possible world
/// of the world table.
#[derive(Clone, Debug, Default)]
pub struct ProbDb {
    world_table: WorldTable,
    relations: BTreeMap<String, URelation>,
}

/// A fully deterministic database: the instance of a [`ProbDb`] in one
/// possible world.
pub type WorldInstance = BTreeMap<String, Vec<Tuple>>;

impl ProbDb {
    /// Creates an empty probabilistic database (one world, no relations).
    pub fn new() -> ProbDb {
        ProbDb::default()
    }

    /// Creates a database that uses an existing world table.
    pub fn with_world_table(world_table: WorldTable) -> ProbDb {
        ProbDb {
            world_table,
            relations: BTreeMap::new(),
        }
    }

    /// The world table `W`.
    pub fn world_table(&self) -> &WorldTable {
        &self.world_table
    }

    /// Mutable access to the world table (used to register variables).
    pub fn world_table_mut(&mut self) -> &mut WorldTable {
        &mut self.world_table
    }

    /// Replaces the world table, e.g. after conditioning.
    pub fn set_world_table(&mut self, world_table: WorldTable) {
        self.world_table = world_table;
    }

    /// Creates an empty [`URelation`] for the given schema after checking
    /// that the name is still free. The relation is *not* inserted; fill it
    /// and pass it to [`ProbDb::insert_relation`].
    ///
    /// # Errors
    ///
    /// Returns [`UrelError::DuplicateRelation`] if a relation with this name
    /// already exists.
    pub fn create_relation(&self, schema: Schema) -> Result<URelation> {
        if self.relations.contains_key(schema.name()) {
            return Err(UrelError::DuplicateRelation {
                relation: schema.name().to_string(),
            });
        }
        Ok(URelation::new(schema))
    }

    /// Inserts a relation, validating every tuple against the schema and
    /// every descriptor against the world table.
    ///
    /// # Errors
    ///
    /// Returns an error if the name is taken, a tuple does not match the
    /// schema, or a descriptor refers to an unknown variable/value.
    pub fn insert_relation(&mut self, relation: URelation) -> Result<()> {
        let name = relation.schema().name().to_string();
        if self.relations.contains_key(&name) {
            return Err(UrelError::DuplicateRelation { relation: name });
        }
        for (tuple, descriptor) in relation.iter() {
            relation.validate_tuple(tuple)?;
            self.validate_descriptor(descriptor)?;
        }
        self.relations.insert(name, relation);
        Ok(())
    }

    /// Inserts or replaces a relation without name-collision checks
    /// (used by conditioning and by the algebra helpers to materialise
    /// intermediate results).
    pub fn replace_relation(&mut self, relation: URelation) {
        self.relations
            .insert(relation.schema().name().to_string(), relation);
    }

    /// Removes a relation, returning it if it existed.
    pub fn remove_relation(&mut self, name: &str) -> Option<URelation> {
        self.relations.remove(name)
    }

    /// Looks up a relation by name.
    ///
    /// # Errors
    ///
    /// Returns [`UrelError::UnknownRelation`] if it does not exist.
    pub fn relation(&self, name: &str) -> Result<&URelation> {
        self.relations
            .get(name)
            .ok_or_else(|| UrelError::UnknownRelation {
                relation: name.to_string(),
            })
    }

    /// Mutable lookup of a relation by name.
    ///
    /// # Errors
    ///
    /// Returns [`UrelError::UnknownRelation`] if it does not exist.
    pub fn relation_mut(&mut self, name: &str) -> Result<&mut URelation> {
        self.relations
            .get_mut(name)
            .ok_or_else(|| UrelError::UnknownRelation {
                relation: name.to_string(),
            })
    }

    /// Iterates over all relations in name order.
    pub fn relations(&self) -> impl Iterator<Item = &URelation> {
        self.relations.values()
    }

    /// Mutable iteration over all relations in name order.
    pub fn relations_mut(&mut self) -> impl Iterator<Item = &mut URelation> {
        self.relations.values_mut()
    }

    /// Names of all relations.
    pub fn relation_names(&self) -> Vec<String> {
        self.relations.keys().cloned().collect()
    }

    /// Number of relations.
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// Validates a descriptor against the world table: every assignment must
    /// refer to a registered variable and an in-range value index.
    pub fn validate_descriptor(&self, descriptor: &WsDescriptor) -> Result<()> {
        for a in descriptor.iter() {
            let size = self.world_table.domain_size(a.var)?;
            if a.value.index() >= size {
                return Err(UrelError::Wsd(uprob_wsd::WsdError::UnknownValue {
                    var: a.var,
                    value: a.value.index() as i64,
                }));
            }
        }
        Ok(())
    }

    /// Checks the whole database: every tuple matches its schema and every
    /// descriptor is valid for the world table.
    pub fn validate(&self) -> Result<()> {
        for relation in self.relations.values() {
            for (tuple, descriptor) in relation.iter() {
                relation.validate_tuple(tuple)?;
                self.validate_descriptor(descriptor)?;
            }
        }
        Ok(())
    }

    /// Evaluates a logical query [`Plan`](crate::Plan) against this
    /// database: the plan is first rewritten by the rule-based optimizer
    /// ([`crate::optimize_plan`] — predicate/projection pushdown,
    /// select-product → join recognition, trivial-predicate and
    /// empty-relation pruning) and then run through the pipelined executor
    /// ([`crate::execute_plan`] — streaming operators, hash equi-joins).
    ///
    /// The result is row-for-row identical (same order, same descriptors)
    /// to the eager reference [`ProbDb::query_eager`]; the answer feeds
    /// directly into the `conf()` / constraint layer of `uprob-query`.
    ///
    /// # Errors
    ///
    /// Returns plan-validation errors (unknown relations/columns,
    /// predicate type errors, union incompatibility).
    pub fn query(&self, plan: &crate::Plan) -> Result<URelation> {
        let optimized = crate::optimize_plan(plan, self)?;
        crate::execute_plan(self, &optimized)
    }

    /// Runs a plan through the pipelined executor *without* optimizing it
    /// first (used to isolate optimizer effects in tests and benchmarks).
    ///
    /// # Errors
    ///
    /// Returns plan-validation errors.
    pub fn query_unoptimized(&self, plan: &crate::Plan) -> Result<URelation> {
        crate::execute_plan(self, plan)
    }

    /// Runs a plan through the eager, materializing reference interpreter
    /// (nested-loop joins; see [`crate::execute_plan_eager`]). The
    /// semantics oracle for the other two paths — quadratic, keep it away
    /// from large inputs.
    ///
    /// # Errors
    ///
    /// Returns plan-validation errors.
    pub fn query_eager(&self, plan: &crate::Plan) -> Result<URelation> {
        crate::execute_plan_eager(self, plan)
    }

    /// Materialises the deterministic database of one possible world.
    pub fn instantiate_world(&self, world: &[ValueIndex]) -> WorldInstance {
        self.relations
            .iter()
            .map(|(name, rel)| (name.clone(), rel.instantiate(world)))
            .collect()
    }

    /// Enumerates all `(world, probability, instance)` triples.
    ///
    /// Exponential in the number of variables; tests and brute-force
    /// baselines only.
    pub fn enumerate_instances(
        &self,
    ) -> impl Iterator<Item = (Vec<ValueIndex>, f64, WorldInstance)> + '_ {
        self.world_table.enumerate_worlds().map(move |(world, p)| {
            let instance = self.instantiate_world(&world);
            (world, p, instance)
        })
    }
}

impl fmt::Display for ProbDb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.world_table)?;
        for relation in self.relations.values() {
            write!(f, "{}", relation.display(&self.world_table))?;
        }
        Ok(())
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::schema::ColumnType;
    use crate::value::Value;

    /// Builds the SSN database of Figures 1/2 (shared with the plan-layer
    /// tests).
    pub(crate) fn ssn_db() -> ProbDb {
        let mut db = ProbDb::new();
        let j = db
            .world_table_mut()
            .add_variable("j", &[(1, 0.2), (7, 0.8)])
            .unwrap();
        let b = db
            .world_table_mut()
            .add_variable("b", &[(4, 0.3), (7, 0.7)])
            .unwrap();
        let schema = Schema::new("R", &[("SSN", ColumnType::Int), ("NAME", ColumnType::Str)]);
        let mut r = db.create_relation(schema).unwrap();
        {
            let w = db.world_table();
            r.push(
                Tuple::new(vec![Value::Int(1), Value::str("John")]),
                WsDescriptor::from_pairs(w, &[(j, 1)]).unwrap(),
            );
            r.push(
                Tuple::new(vec![Value::Int(7), Value::str("John")]),
                WsDescriptor::from_pairs(w, &[(j, 7)]).unwrap(),
            );
            r.push(
                Tuple::new(vec![Value::Int(4), Value::str("Bill")]),
                WsDescriptor::from_pairs(w, &[(b, 4)]).unwrap(),
            );
            r.push(
                Tuple::new(vec![Value::Int(7), Value::str("Bill")]),
                WsDescriptor::from_pairs(w, &[(b, 7)]).unwrap(),
            );
        }
        db.insert_relation(r).unwrap();
        db
    }

    #[test]
    fn create_insert_and_lookup() {
        let db = ssn_db();
        assert_eq!(db.num_relations(), 1);
        assert_eq!(db.relation_names(), vec!["R".to_string()]);
        assert_eq!(db.relation("R").unwrap().len(), 4);
        assert!(matches!(
            db.relation("S"),
            Err(UrelError::UnknownRelation { .. })
        ));
        assert!(db.validate().is_ok());
    }

    #[test]
    fn duplicate_relation_is_rejected() {
        let mut db = ssn_db();
        let schema = Schema::new("R", &[("X", ColumnType::Int)]);
        assert!(matches!(
            db.create_relation(schema.clone()),
            Err(UrelError::DuplicateRelation { .. })
        ));
        let rel = URelation::new(schema);
        assert!(matches!(
            db.insert_relation(rel),
            Err(UrelError::DuplicateRelation { .. })
        ));
    }

    #[test]
    fn insert_validates_tuples_and_descriptors() {
        let mut db = ProbDb::new();
        let schema = Schema::new("S", &[("A", ColumnType::Int)]);
        let mut rel = db.create_relation(schema).unwrap();
        // Descriptor refers to a variable that is not in the world table.
        let mut bogus = WsDescriptor::empty();
        bogus
            .assign(uprob_wsd::VarId(0), uprob_wsd::ValueIndex(0))
            .unwrap();
        rel.push(Tuple::new(vec![Value::Int(1)]), bogus);
        assert!(db.insert_relation(rel).is_err());
    }

    #[test]
    fn world_instances_match_figure_1() {
        let db = ssn_db();
        let instances: Vec<_> = db.enumerate_instances().collect();
        assert_eq!(instances.len(), 4);
        let total: f64 = instances.iter().map(|(_, p, _)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // Probabilities of the four worlds of Figure 1: .06, .24, .14, .56.
        let mut probs: Vec<f64> = instances.iter().map(|(_, p, _)| *p).collect();
        probs.sort_by(f64::total_cmp);
        let expected = [0.06, 0.14, 0.24, 0.56];
        for (p, e) in probs.iter().zip(expected) {
            assert!((p - e).abs() < 1e-12);
        }
        // Every world contains exactly two tuples in R.
        for (_, _, instance) in &instances {
            assert_eq!(instance["R"].len(), 2);
        }
    }

    #[test]
    fn replace_and_remove_relation() {
        let mut db = ssn_db();
        let schema = Schema::new("R", &[("X", ColumnType::Int)]);
        db.replace_relation(URelation::new(schema));
        assert_eq!(db.relation("R").unwrap().len(), 0);
        assert!(db.remove_relation("R").is_some());
        assert!(db.remove_relation("R").is_none());
        assert_eq!(db.num_relations(), 0);
    }

    #[test]
    fn display_renders_world_table_and_relations() {
        let db = ssn_db();
        let text = db.to_string();
        assert!(text.contains("Var"));
        assert!(text.contains("R(SSN: INT, NAME: STR)"));
    }
}
