//! Rule-based logical plan optimization.
//!
//! [`optimize_plan`] rewrites a [`Plan`] into a world-by-world equivalent
//! plan that the pipelined executor ([`crate::execute_plan`]) can run
//! faster, using the classical rule set:
//!
//! * **trivial-predicate pruning** — predicates are constant-folded
//!   ([`Predicate::simplify`]); `σ_TRUE` disappears, `σ_FALSE` and joins
//!   with a `FALSE` condition collapse to [`Plan::Empty`];
//! * **empty-relation pruning** — scans of empty stored relations become
//!   [`Plan::Empty`], and emptiness propagates through every operator
//!   (`∅ ⋈ R = ∅`, `∅ ∪ R = R`, …);
//! * **predicate pushdown** — selection conjuncts that only reference one
//!   side of a join/product move below it, and selections push through
//!   unions (with positional column renaming), projections, renames and
//!   distinct;
//! * **select-product → join recognition** — a selection over a cross
//!   product (or over a join) folds its cross-side conjuncts into the join
//!   condition, from which the executor extracts hash-join keys;
//! * **projection pushdown** — a projection above a join narrows the join
//!   inputs to the columns the output and the join condition need.
//!
//! Every rule preserves the output schema (names included) and the
//! multiset of `(tuple, ws-descriptor)` rows — ws-descriptors are not
//! plan-visible columns but ride alongside each row, so no rule can drop
//! or reorder them relative to their tuples (the paper's `π_{WSD, A}`
//! convention). Column references are resolved exactly like the executors
//! resolve them (first match in schema order); a rewrite that cannot
//! guarantee identical resolution — e.g. pushing through a union whose
//! branches disagree on duplicate names — is skipped rather than risked.

// uprob-lint: allow-file(panic-index) -- every index in this file is resolved by `column_index`/`position` on the same schema, or bounded by that schema's arity, immediately before use

use std::collections::BTreeSet;

use uprob_wsd::FxHashMap;

use crate::database::ProbDb;
use crate::plan::Plan;
use crate::predicate::Predicate;
use crate::schema::Schema;
use crate::Result;

/// Maximum number of full rewrite rounds before the optimizer settles for
/// the current plan (each round is prune → selection pushdown → prune →
/// projection pushdown; real plans reach a fixpoint in two or three).
const MAX_ROUNDS: usize = 8;

/// Optimizes a plan against `db` (rules above). The result computes the
/// same multiset of `(tuple, ws-descriptor)` rows, with the same output
/// schema, on every database sharing `db`'s schemas and statistics-free
/// emptiness (the only instance property the rules consult is whether a
/// scanned relation is empty).
///
/// # Errors
///
/// Returns plan-validation errors (unknown relations/columns, predicate
/// type errors, union incompatibility); a valid plan never fails.
pub fn optimize_plan(plan: &Plan, db: &ProbDb) -> Result<Plan> {
    let schema = plan.output_schema(db)?;
    let mut current = plan.clone();
    for _ in 0..MAX_ROUNDS {
        let mut next = prune(current.clone(), db)?;
        next = push_selections(next, db)?;
        next = prune(next, db)?;
        next = push_projections(next, db)?;
        if next == current {
            break;
        }
        current = next;
    }
    debug_assert_eq!(
        current.output_schema(db)?,
        schema,
        "optimizer rules must preserve the output schema"
    );
    Ok(current)
}

/// Applies `f` to every direct child of `plan`.
fn map_children(plan: Plan, db: &ProbDb, f: fn(Plan, &ProbDb) -> Result<Plan>) -> Result<Plan> {
    Ok(match plan {
        Plan::Scan { .. } | Plan::Empty { .. } => plan,
        Plan::Select { input, predicate } => Plan::Select {
            input: Box::new(f(*input, db)?),
            predicate,
        },
        Plan::Project { input, columns } => Plan::Project {
            input: Box::new(f(*input, db)?),
            columns,
        },
        Plan::Join {
            left,
            right,
            predicate,
        } => Plan::Join {
            left: Box::new(f(*left, db)?),
            right: Box::new(f(*right, db)?),
            predicate,
        },
        Plan::Product { left, right } => Plan::Product {
            left: Box::new(f(*left, db)?),
            right: Box::new(f(*right, db)?),
        },
        Plan::Union { left, right } => Plan::Union {
            left: Box::new(f(*left, db)?),
            right: Box::new(f(*right, db)?),
        },
        Plan::Rename { input, name } => Plan::Rename {
            input: Box::new(f(*input, db)?),
            name,
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(f(*input, db)?),
        },
    })
}

/// Bottom-up structural simplification: trivial predicates, empty-relation
/// propagation, and collapsing of stacked selects/projects/renames/
/// distincts.
fn prune(plan: Plan, db: &ProbDb) -> Result<Plan> {
    Ok(match plan {
        Plan::Scan { relation } => {
            let rel = db.relation(&relation)?;
            if rel.is_empty() {
                Plan::Empty {
                    schema: rel.schema().clone(),
                }
            } else {
                Plan::Scan { relation }
            }
        }
        Plan::Empty { .. } => plan,
        Plan::Select { input, predicate } => {
            let input = prune(*input, db)?;
            match (input, predicate.simplify()) {
                (input, Predicate::True) => input,
                (input, Predicate::False) => Plan::Empty {
                    schema: input.output_schema(db)?,
                },
                (Plan::Empty { schema }, _) => Plan::Empty { schema },
                // σ_p(σ_q(R)) = σ_{q ∧ p}(R)
                (
                    Plan::Select {
                        input: inner,
                        predicate: q,
                    },
                    p,
                ) => Plan::Select {
                    input: inner,
                    predicate: q.and(p),
                },
                (input, p) => Plan::Select {
                    input: Box::new(input),
                    predicate: p,
                },
            }
        }
        Plan::Project { input, columns } => {
            let input = prune(*input, db)?;
            match input {
                Plan::Empty { schema } => {
                    let names: Vec<&str> = columns.iter().map(String::as_str).collect();
                    Plan::Empty {
                        schema: schema.project(&names, schema.name())?,
                    }
                }
                // π_A(π_B(R)) = π_A(R): the outer names are a subset of the
                // inner projection's output names, which the inner
                // projection resolved in R exactly like π_A(R) would
                // (projection preserves column names and first-match
                // order among the survivors it references).
                Plan::Project { input: inner, .. } => Plan::Project {
                    input: inner,
                    columns,
                },
                input => {
                    let schema = input.output_schema(db)?;
                    let identity = columns.len() == schema.arity()
                        && columns.iter().enumerate().all(|(i, c)| {
                            schema.columns()[i].name == *c
                                && schema.column_index(c).map(|x| x == i).unwrap_or(false)
                        });
                    if identity {
                        input
                    } else {
                        Plan::Project {
                            input: Box::new(input),
                            columns,
                        }
                    }
                }
            }
        }
        Plan::Join {
            left,
            right,
            predicate,
        } => {
            let left = prune(*left, db)?;
            let right = prune(*right, db)?;
            let predicate = predicate.simplify();
            if is_empty_plan(&left) || is_empty_plan(&right) || predicate == Predicate::False {
                Plan::Empty {
                    schema: concat_schema(&left, &right, db)?,
                }
            } else if predicate == Predicate::True {
                Plan::Product {
                    left: Box::new(left),
                    right: Box::new(right),
                }
            } else {
                Plan::Join {
                    left: Box::new(left),
                    right: Box::new(right),
                    predicate,
                }
            }
        }
        Plan::Product { left, right } => {
            let left = prune(*left, db)?;
            let right = prune(*right, db)?;
            if is_empty_plan(&left) || is_empty_plan(&right) {
                Plan::Empty {
                    schema: concat_schema(&left, &right, db)?,
                }
            } else {
                Plan::Product {
                    left: Box::new(left),
                    right: Box::new(right),
                }
            }
        }
        Plan::Union { left, right } => {
            let left = prune(*left, db)?;
            let right = prune(*right, db)?;
            if is_empty_plan(&right) {
                // The union's schema is the left operand's: dropping an
                // empty right side is always transparent.
                left
            } else if is_empty_plan(&left) {
                // Dropping an empty left side changes the output schema to
                // the right operand's; only safe when they agree exactly.
                if left.output_schema(db)? == right.output_schema(db)? {
                    right
                } else {
                    Plan::Union {
                        left: Box::new(left),
                        right: Box::new(right),
                    }
                }
            } else {
                Plan::Union {
                    left: Box::new(left),
                    right: Box::new(right),
                }
            }
        }
        Plan::Rename { input, name } => {
            let input = prune(*input, db)?;
            match input {
                Plan::Empty { schema } => Plan::Empty {
                    schema: schema.renamed(&name),
                },
                Plan::Rename { input: inner, .. } => Plan::Rename { input: inner, name },
                input => {
                    if input.output_schema(db)?.name() == name {
                        input
                    } else {
                        Plan::Rename {
                            input: Box::new(input),
                            name,
                        }
                    }
                }
            }
        }
        Plan::Distinct { input } => {
            let input = prune(*input, db)?;
            match input {
                Plan::Empty { schema } => Plan::Empty { schema },
                distinct @ Plan::Distinct { .. } => distinct,
                input => Plan::Distinct {
                    input: Box::new(input),
                },
            }
        }
    })
}

fn is_empty_plan(plan: &Plan) -> bool {
    matches!(plan, Plan::Empty { .. })
}

fn concat_schema(left: &Plan, right: &Plan, db: &ProbDb) -> Result<Schema> {
    let l = left.output_schema(db)?;
    let r = right.output_schema(db)?;
    Ok(l.concat(&r, l.name()))
}

/// Top-down selection pushdown (and join-predicate sinking: a join's own
/// single-side conjuncts move below it too).
fn push_selections(plan: Plan, db: &ProbDb) -> Result<Plan> {
    let plan = match plan {
        Plan::Select { input, predicate } => push_select_into(*input, predicate, db)?,
        Plan::Join {
            left,
            right,
            predicate,
        } => build_join(*left, *right, predicate.into_conjuncts(), db)?,
        other => other,
    };
    map_children(plan, db, push_selections)
}

/// Pushes the selection `predicate` into (or through) `input`.
fn push_select_into(input: Plan, predicate: Predicate, db: &ProbDb) -> Result<Plan> {
    Ok(match input {
        // σ_φ(L ⋈_ψ R): classify the conjuncts of φ ∧ ψ.
        Plan::Join {
            left,
            right,
            predicate: join_predicate,
        } => {
            let mut conjuncts = join_predicate.into_conjuncts();
            conjuncts.extend(predicate.into_conjuncts());
            build_join(*left, *right, conjuncts, db)?
        }
        // σ_φ(L × R): the select-product → join recognition.
        Plan::Product { left, right } => build_join(*left, *right, predicate.into_conjuncts(), db)?,
        // σ_φ(L ∪ R) = σ_φ(L) ∪ σ_φ'(R) with φ' positionally renamed.
        Plan::Union { left, right } => {
            let ls = left.output_schema(db)?;
            let rs = right.output_schema(db)?;
            let mut pushed_left = Vec::new();
            let mut pushed_right = Vec::new();
            let mut kept = Vec::new();
            for c in predicate.into_conjuncts() {
                match remap_for_right_branch(&c, &ls, &rs) {
                    Some(rc) => {
                        pushed_left.push(c);
                        pushed_right.push(rc);
                    }
                    None => kept.push(c),
                }
            }
            let unioned = if pushed_left.is_empty() {
                Plan::Union { left, right }
            } else {
                Plan::Union {
                    left: Box::new(Plan::Select {
                        input: left,
                        predicate: Predicate::conjoin(pushed_left),
                    }),
                    right: Box::new(Plan::Select {
                        input: right,
                        predicate: Predicate::conjoin(pushed_right),
                    }),
                }
            };
            wrap_select(unioned, kept)
        }
        // σ_φ(π_A(R)) = π_A(σ_φ(R)): projection preserves the names and
        // the first-match resolution of every column φ can reference.
        Plan::Project { input, columns } => Plan::Project {
            input: Box::new(Plan::Select { input, predicate }),
            columns,
        },
        // Renaming changes the relation name only; column references are
        // untouched.
        Plan::Rename { input, name } => Plan::Rename {
            input: Box::new(Plan::Select { input, predicate }),
            name,
        },
        // σ and δ commute: both filter/keep whole rows.
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(Plan::Select { input, predicate }),
        },
        // σ_p(σ_q(R)) = σ_{q ∧ p}(R), then keep pushing.
        Plan::Select {
            input,
            predicate: q,
        } => push_select_into(*input, q.and(predicate), db)?,
        other => Plan::Select {
            input: Box::new(other),
            predicate,
        },
    })
}

fn wrap_select(plan: Plan, conjuncts: Vec<Predicate>) -> Plan {
    if conjuncts.is_empty() {
        plan
    } else {
        Plan::Select {
            input: Box::new(plan),
            predicate: Predicate::conjoin(conjuncts),
        }
    }
}

/// Rebuilds a join from its operands and a classified conjunct list:
/// left-only conjuncts become a selection on the left input, right-only
/// conjuncts (renamed to the right operand's local column names) a
/// selection on the right input, and the cross-side remainder the join
/// condition (an empty remainder degrades to a cross product).
fn build_join(left: Plan, right: Plan, conjuncts: Vec<Predicate>, db: &ProbDb) -> Result<Plan> {
    let ls = left.output_schema(db)?;
    let rs = right.output_schema(db)?;
    let concat = ls.concat(&rs, ls.name());
    let left_arity = ls.arity();
    let mut left_push = Vec::new();
    let mut right_push = Vec::new();
    let mut keep = Vec::new();
    for c in conjuncts {
        let c = c.simplify();
        if c == Predicate::True {
            continue;
        }
        let refs = c.referenced_columns();
        let indices: Option<Vec<usize>> =
            refs.iter().map(|n| concat.column_index(n).ok()).collect();
        let Some(indices) = indices else {
            keep.push(c);
            continue;
        };
        if indices.is_empty() {
            // Constant-only conjunct (not foldable by simplify): keep it at
            // the join, where it is evaluated like the eager path would.
            keep.push(c);
        } else if indices.iter().all(|&i| i < left_arity) {
            // The left region of the concat schema is the left schema,
            // names and order: first-match resolution is unchanged below.
            left_push.push(c);
        } else if indices.iter().all(|&i| i >= left_arity) {
            match remap_to_right_local(&c, &refs, &indices, left_arity, &rs) {
                Some(rc) => right_push.push(rc),
                None => keep.push(c),
            }
        } else {
            keep.push(c);
        }
    }
    let left = wrap_select(left, left_push);
    let right = wrap_select(right, right_push);
    Ok(match Predicate::conjoin(keep) {
        Predicate::True => Plan::Product {
            left: Box::new(left),
            right: Box::new(right),
        },
        predicate => Plan::Join {
            left: Box::new(left),
            right: Box::new(right),
            predicate,
        },
    })
}

/// Rewrites a right-only conjunct from concat names (possibly
/// `rel.column`-qualified) to the right operand's local names, provided
/// every rewritten reference first-match-resolves to the same column.
fn remap_to_right_local(
    conjunct: &Predicate,
    refs: &[String],
    indices: &[usize],
    left_arity: usize,
    right_schema: &Schema,
) -> Option<Predicate> {
    let mut map = FxHashMap::default();
    for (name, &idx) in refs.iter().zip(indices) {
        let local = idx - left_arity;
        let local_name = right_schema.columns()[local].name.clone();
        if right_schema.column_index(&local_name).ok()? != local {
            return None;
        }
        map.insert(name.clone(), local_name);
    }
    conjunct.rename_columns(&map)
}

/// Rewrites a conjunct over a union's output schema (the left branch's)
/// into the right branch's positional column names; `None` when a
/// reference cannot be renamed resolution-stably.
fn remap_for_right_branch(
    conjunct: &Predicate,
    left_schema: &Schema,
    right_schema: &Schema,
) -> Option<Predicate> {
    let mut map = FxHashMap::default();
    for name in conjunct.referenced_columns() {
        let idx = left_schema.column_index(&name).ok()?;
        let right_name = right_schema.columns()[idx].name.clone();
        if right_schema.column_index(&right_name).ok()? != idx {
            return None;
        }
        map.insert(name, right_name);
    }
    conjunct.rename_columns(&map)
}

/// Top-down projection pushdown.
fn push_projections(plan: Plan, db: &ProbDb) -> Result<Plan> {
    let plan = match plan {
        Plan::Project { input, columns } => push_project_into(*input, columns, db)?,
        other => other,
    };
    map_children(plan, db, push_projections)
}

/// Pushes the projection onto `columns` into (or through) `input`.
fn push_project_into(input: Plan, columns: Vec<String>, db: &ProbDb) -> Result<Plan> {
    Ok(match input {
        // π_A(L ∪ R) = π_A(L) ∪ π_{A'}(R), positionally renamed.
        Plan::Union { left, right } => {
            let ls = left.output_schema(db)?;
            let rs = right.output_schema(db)?;
            let mut right_columns = Vec::with_capacity(columns.len());
            let mut stable = true;
            for c in &columns {
                let idx = ls.column_index(c)?;
                let right_name = rs.columns()[idx].name.clone();
                if rs
                    .column_index(&right_name)
                    .map(|x| x == idx)
                    .unwrap_or(false)
                {
                    right_columns.push(right_name);
                } else {
                    stable = false;
                    break;
                }
            }
            if stable {
                Plan::Union {
                    left: Box::new(Plan::Project {
                        input: left,
                        columns,
                    }),
                    right: Box::new(Plan::Project {
                        input: right,
                        columns: right_columns,
                    }),
                }
            } else {
                Plan::Project {
                    input: Box::new(Plan::Union { left, right }),
                    columns,
                }
            }
        }
        // π_A over a rename: the rename only affects the relation name.
        Plan::Rename { input, name } => Plan::Rename {
            input: Box::new(Plan::Project { input, columns }),
            name,
        },
        Plan::Join {
            left,
            right,
            predicate,
        } => push_project_into_join(*left, *right, Some(predicate), columns, db)?,
        Plan::Product { left, right } => push_project_into_join(*left, *right, None, columns, db)?,
        other => Plan::Project {
            input: Box::new(other),
            columns,
        },
    })
}

/// Narrows the inputs of a join/product to the columns referenced by the
/// outer projection and the join condition.
///
/// Column names of the concatenated schema depend on which left columns
/// exist (clashing right columns are `rel.column`-prefixed), so the left
/// kept-set is augmented with every left column whose name clashes with a
/// kept right column: this keeps every surviving concat name — and hence
/// the outer projection list and join condition — byte-identical. The
/// rewrite is skipped entirely if name or resolution stability cannot be
/// guaranteed (duplicate-name corner cases).
fn push_project_into_join(
    left: Plan,
    right: Plan,
    predicate: Option<Predicate>,
    columns: Vec<String>,
    db: &ProbDb,
) -> Result<Plan> {
    let rebuild = |left: Plan, right: Plan, predicate: Option<Predicate>, columns: Vec<String>| {
        let input = match predicate {
            Some(predicate) => Plan::Join {
                left: Box::new(left),
                right: Box::new(right),
                predicate,
            },
            None => Plan::Product {
                left: Box::new(left),
                right: Box::new(right),
            },
        };
        Plan::Project {
            input: Box::new(input),
            columns,
        }
    };

    let ls = left.output_schema(db)?;
    let rs = right.output_schema(db)?;
    let concat = ls.concat(&rs, ls.name());
    let left_arity = ls.arity();

    // Concat indices needed by the projection and the join condition.
    let mut referenced: Vec<String> = columns.clone();
    if let Some(p) = &predicate {
        referenced.extend(p.referenced_columns());
    }
    let mut needed: BTreeSet<usize> = BTreeSet::new();
    for name in &referenced {
        needed.insert(concat.column_index(name)?);
    }
    let mut left_keep: BTreeSet<usize> =
        needed.iter().copied().filter(|&i| i < left_arity).collect();
    let right_keep: BTreeSet<usize> = needed
        .iter()
        .copied()
        .filter(|&i| i >= left_arity)
        .map(|i| i - left_arity)
        .collect();
    // Name-stability augmentation: keep any left column whose name clashes
    // with a kept right column, so the `rel.column` prefixing of the
    // narrowed concat matches the original.
    for &ri in &right_keep {
        if let Ok(li) = ls.column_index(&rs.columns()[ri].name) {
            left_keep.insert(li);
        }
    }
    if left_keep.len() == left_arity && right_keep.len() == rs.arity() {
        return Ok(rebuild(left, right, predicate, columns));
    }

    // Resolution stability of the kept columns inside their own schema.
    let stable = left_keep
        .iter()
        .all(|&i| ls.column_index(&ls.columns()[i].name).map(|x| x == i) == Ok(true))
        && right_keep
            .iter()
            .all(|&i| rs.column_index(&rs.columns()[i].name).map(|x| x == i) == Ok(true));
    if !stable {
        return Ok(rebuild(left, right, predicate, columns));
    }

    let left_columns: Vec<String> = left_keep
        .iter()
        .map(|&i| ls.columns()[i].name.clone())
        .collect();
    let right_columns: Vec<String> = right_keep
        .iter()
        .map(|&i| rs.columns()[i].name.clone())
        .collect();
    let narrowed_left = {
        let names: Vec<&str> = left_columns.iter().map(String::as_str).collect();
        ls.project(&names, ls.name())?
    };
    let narrowed_right = {
        let names: Vec<&str> = right_columns.iter().map(String::as_str).collect();
        rs.project(&names, rs.name())?
    };
    let narrowed_concat = narrowed_left.concat(&narrowed_right, narrowed_left.name());

    // Every surviving concat name must be unchanged, and every reference
    // must resolve to the same (surviving) column as before.
    let kept_concat: Vec<usize> = left_keep
        .iter()
        .copied()
        .chain(right_keep.iter().map(|&i| i + left_arity))
        .collect();
    for (pos, &old) in kept_concat.iter().enumerate() {
        if narrowed_concat.columns()[pos].name != concat.columns()[old].name {
            return Ok(rebuild(left, right, predicate, columns));
        }
    }
    for name in &referenced {
        let old = concat.column_index(name)?;
        // uprob-lint: allow(panic-expect) -- `referenced` seeded the keep-sets above, so every referenced column survives into kept_concat
        let pos = kept_concat.iter().position(|&i| i == old).expect("kept");
        if narrowed_concat.column_index(name).map(|x| x == pos) != Ok(true) {
            return Ok(rebuild(left, right, predicate, columns));
        }
    }

    Ok(rebuild(
        Plan::Project {
            input: Box::new(left),
            columns: left_columns,
        },
        Plan::Project {
            input: Box::new(right),
            columns: right_columns,
        },
        predicate,
        columns,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::execute_plan_eager;
    use crate::predicate::{Comparison, Expr};
    use crate::schema::ColumnType;
    use crate::tuple::Tuple;
    use crate::value::Value;
    use uprob_wsd::WsDescriptor;

    /// Two small relations sharing the variable space: R(A, B) and S(B, C).
    fn join_db() -> ProbDb {
        let mut db = ProbDb::new();
        let x = db
            .world_table_mut()
            .add_variable("x", &[(0, 0.4), (1, 0.6)])
            .unwrap();
        let y = db
            .world_table_mut()
            .add_variable("y", &[(0, 0.5), (1, 0.5)])
            .unwrap();
        let mut r = db
            .create_relation(Schema::new(
                "R",
                &[("A", ColumnType::Int), ("B", ColumnType::Int)],
            ))
            .unwrap();
        let mut s = db
            .create_relation(Schema::new(
                "S",
                &[("B", ColumnType::Int), ("C", ColumnType::Int)],
            ))
            .unwrap();
        {
            let w = db.world_table();
            for (a, b, pairs) in [
                (1i64, 10i64, vec![(x, 0i64)]),
                (2, 20, vec![(x, 1)]),
                (3, 20, vec![]),
            ] {
                r.push(
                    Tuple::new(vec![Value::Int(a), Value::Int(b)]),
                    WsDescriptor::from_pairs(w, &pairs).unwrap(),
                );
            }
            for (b, c, pairs) in [
                (10i64, 100i64, vec![(y, 0i64)]),
                (20, 200, vec![(y, 1)]),
                (20, 300, vec![(x, 0)]),
            ] {
                s.push(
                    Tuple::new(vec![Value::Int(b), Value::Int(c)]),
                    WsDescriptor::from_pairs(w, &pairs).unwrap(),
                );
            }
        }
        db.insert_relation(r).unwrap();
        db.insert_relation(s).unwrap();
        // An empty relation for pruning tests.
        let e = db
            .create_relation(Schema::new(
                "E",
                &[("A", ColumnType::Int), ("B", ColumnType::Int)],
            ))
            .unwrap();
        db.insert_relation(e).unwrap();
        db
    }

    fn sorted_rows(rel: &crate::URelation) -> Vec<(Tuple, WsDescriptor)> {
        let mut rows: Vec<_> = rel.rows().to_vec();
        rows.sort();
        rows
    }

    fn assert_equivalent(db: &ProbDb, plan: &Plan) -> Plan {
        let optimized = optimize_plan(plan, db).unwrap();
        assert_eq!(
            optimized.output_schema(db).unwrap(),
            plan.output_schema(db).unwrap(),
            "schema must be preserved"
        );
        let eager = execute_plan_eager(db, plan).unwrap();
        let opt_eager = execute_plan_eager(db, &optimized).unwrap();
        assert_eq!(
            sorted_rows(&eager),
            sorted_rows(&opt_eager),
            "optimized plan changed the result:\n{plan}\nvs\n{optimized}"
        );
        optimized
    }

    #[test]
    fn pushes_single_side_conjuncts_below_the_join() {
        let db = join_db();
        let plan = Plan::scan("R").product(Plan::scan("S")).select(
            Predicate::cols_eq("B", "S.B")
                .and(Predicate::col_eq("A", 2i64))
                .and(Predicate::cmp(
                    Expr::col("C"),
                    Comparison::Gt,
                    Expr::val(150i64),
                )),
        );
        let optimized = assert_equivalent(&db, &plan);
        // The select-product pair became a join whose children carry the
        // single-side conjuncts.
        let Plan::Join {
            left,
            right,
            predicate,
        } = &optimized
        else {
            panic!("expected a join at the root, got:\n{optimized}");
        };
        assert_eq!(predicate, &Predicate::cols_eq("B", "S.B"));
        assert!(
            matches!(left.as_ref(), Plan::Select { .. }),
            "left conjunct not pushed:\n{optimized}"
        );
        let Plan::Select { predicate: rp, .. } = right.as_ref() else {
            panic!("right conjunct not pushed:\n{optimized}");
        };
        // `C > 150` was rewritten to the right operand's local name (no
        // qualification needed here) and pushed.
        assert_eq!(rp.referenced_columns(), vec!["C"]);
    }

    #[test]
    fn prunes_trivial_predicates_and_empty_relations() {
        let db = join_db();
        let plan = Plan::scan("R")
            .select(Predicate::True)
            .select(Predicate::col_eq("A", 1i64).and(Predicate::True));
        let optimized = assert_equivalent(&db, &plan);
        let Plan::Select { input, .. } = &optimized else {
            panic!("expected a single select, got:\n{optimized}");
        };
        assert!(matches!(input.as_ref(), Plan::Scan { .. }));

        // FALSE selections and empty scans collapse, and emptiness
        // propagates through joins; the empty side of a union is dropped.
        for plan in [
            Plan::scan("R").select(Predicate::False),
            Plan::scan("E"),
            Plan::scan("R").join_on(
                Plan::scan("E").rename("E2"),
                Predicate::cols_eq("A", "E2.A"),
            ),
            Plan::scan("E").product(Plan::scan("S")),
        ] {
            let optimized = assert_equivalent(&db, &plan);
            assert!(
                matches!(optimized, Plan::Empty { .. }),
                "expected Empty, got:\n{optimized}"
            );
        }
        let union = Plan::scan("R").union(Plan::scan("E"));
        let optimized = assert_equivalent(&db, &union);
        assert!(matches!(optimized, Plan::Scan { .. }));
        let union_flipped = Plan::scan("E").union(Plan::scan("R"));
        // Schemas differ in relation name only — still not identical, so
        // the union is kept (and stays correct).
        assert_equivalent(&db, &union_flipped);
    }

    #[test]
    fn pushes_selections_through_unions_with_renaming() {
        let db = join_db();
        // S's columns are (B, C); R's are (A, B): position 0 is "B" on the
        // right branch.
        let plan = Plan::scan("R")
            .union(Plan::scan("S"))
            .select(Predicate::col_eq("A", 2i64));
        let optimized = assert_equivalent(&db, &plan);
        let Plan::Union { left, right } = &optimized else {
            panic!("selection not pushed through the union:\n{optimized}");
        };
        let Plan::Select { predicate: lp, .. } = left.as_ref() else {
            panic!("left branch misses the selection:\n{optimized}");
        };
        assert_eq!(lp.referenced_columns(), vec!["A"]);
        let Plan::Select { predicate: rp, .. } = right.as_ref() else {
            panic!("right branch misses the selection:\n{optimized}");
        };
        assert_eq!(rp.referenced_columns(), vec!["B"]);
    }

    #[test]
    fn pushes_projections_below_joins_keeping_names_stable() {
        let db = join_db();
        let plan = Plan::scan("R")
            .join_on(Plan::scan("S"), Predicate::cols_eq("B", "S.B"))
            .project(&["A", "C"]);
        let optimized = assert_equivalent(&db, &plan);
        // Both children got narrowed: R to (A, B), i.e. unchanged arity —
        // actually R needs A (output) and B (join key), so R keeps both;
        // S needs B (join key, and it clashes so it is kept on the left
        // too) and C: also both. With these tiny schemas nothing narrows;
        // use a wider relation to see the narrowing.
        let _ = optimized;
        let mut db = join_db();
        let mut wide = db
            .create_relation(Schema::new(
                "W",
                &[
                    ("B", ColumnType::Int),
                    ("C", ColumnType::Int),
                    ("D", ColumnType::Int),
                    ("EZ", ColumnType::Int),
                ],
            ))
            .unwrap();
        wide.push(
            Tuple::new(vec![
                Value::Int(10),
                Value::Int(1),
                Value::Int(2),
                Value::Int(3),
            ]),
            WsDescriptor::empty(),
        );
        db.insert_relation(wide).unwrap();
        let plan = Plan::scan("R")
            .join_on(Plan::scan("W"), Predicate::cols_eq("B", "W.B"))
            .project(&["A", "C"]);
        let optimized = assert_equivalent(&db, &plan);
        let Plan::Project { input, .. } = &optimized else {
            panic!("outer projection must stay:\n{optimized}");
        };
        let Plan::Join { right, .. } = input.as_ref() else {
            panic!("join expected below the projection:\n{optimized}");
        };
        let Plan::Project { columns, .. } = right.as_ref() else {
            panic!("right input not narrowed:\n{optimized}");
        };
        // W narrows to its join key and the projected output column.
        assert_eq!(columns, &vec!["B".to_string(), "C".to_string()]);
    }

    #[test]
    fn recognizes_equi_joins_under_selects_over_products() {
        let db = join_db();
        // The classic unoptimized shape: σ over a product chain.
        let plan = Plan::scan("R")
            .product(Plan::scan("S"))
            .select(Predicate::cols_eq("B", "S.B"));
        let optimized = assert_equivalent(&db, &plan);
        assert!(
            matches!(optimized, Plan::Join { .. }),
            "expected join recognition, got:\n{optimized}"
        );
        // A selection whose conjuncts all push away leaves a product.
        let plan = Plan::scan("R")
            .product(Plan::scan("S"))
            .select(Predicate::col_eq("A", 1i64));
        let optimized = assert_equivalent(&db, &plan);
        assert!(
            matches!(optimized, Plan::Product { .. }),
            "expected bare product, got:\n{optimized}"
        );
    }

    #[test]
    fn pushdown_commutes_with_rename_distinct_and_projection() {
        let db = join_db();
        let plan = Plan::scan("R")
            .rename("R2")
            .distinct()
            .project(&["B", "A"])
            .select(Predicate::col_eq("A", 2i64));
        let optimized = assert_equivalent(&db, &plan);
        // The selection sank below projection, distinct and rename, down
        // to the scan.
        fn selection_depth(plan: &Plan) -> Option<usize> {
            match plan {
                Plan::Select { input, .. } => {
                    matches!(input.as_ref(), Plan::Scan { .. }).then_some(0)
                }
                Plan::Project { input, .. }
                | Plan::Rename { input, .. }
                | Plan::Distinct { input } => selection_depth(input).map(|d| d + 1),
                _ => None,
            }
        }
        assert!(
            selection_depth(&optimized).is_some(),
            "selection did not reach the scan:\n{optimized}"
        );
    }

    #[test]
    fn optimizer_validates_and_rejects_malformed_plans() {
        let db = join_db();
        assert!(optimize_plan(&Plan::scan("NOPE"), &db).is_err());
        assert!(optimize_plan(
            &Plan::scan("R").select(Predicate::col_eq("MISSING", 1i64)),
            &db
        )
        .is_err());
    }
}
