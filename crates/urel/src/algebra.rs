//! Positive relational algebra on U-relations (Section 2).
//!
//! The operations translate queries on the represented probabilistic
//! database into purely relational processing on the U-relations:
//!
//! * selections and projections simply keep the ws-descriptor of each tuple,
//! * joins additionally require the ws-descriptors of the joined tuples to
//!   be **consistent** and output the union of the two descriptors,
//! * set union concatenates the operands,
//! * the projection to a nullary schema turns a query into a Boolean query
//!   whose answer is a ws-set (the union of all answer descriptors).
//!
//! All operations are world-by-world correct: instantiating the output in a
//! possible world yields the same tuples as running the classical operator
//! on the instantiated inputs (tested below and by property tests).

use uprob_wsd::WsSet;

use crate::predicate::Predicate;
use crate::relation::URelation;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::Result;

/// Selection `σ_φ(R)`: keeps the rows whose tuple satisfies `φ`, with their
/// descriptors unchanged.
pub fn select(relation: &URelation, predicate: &Predicate, name: &str) -> Result<URelation> {
    let schema = relation.schema().renamed(name);
    let mut out = URelation::new(schema);
    for (tuple, descriptor) in relation.iter() {
        if predicate.eval(relation.schema(), tuple)? {
            out.push(tuple.clone(), descriptor.clone());
        }
    }
    Ok(out)
}

/// Projection `π_A(R)`: projects every tuple onto the named columns, keeping
/// its descriptor (the paper's `π_{WSD, A}`). Duplicate tuples are *not*
/// merged; they represent alternative derivations in different world-sets.
pub fn project(relation: &URelation, columns: &[&str], name: &str) -> Result<URelation> {
    let schema = relation.schema().project(columns, name)?;
    let positions: Vec<usize> = columns
        .iter()
        .map(|c| relation.schema().column_index(c))
        .collect::<Result<_>>()?;
    let mut out = URelation::new(schema);
    for (tuple, descriptor) in relation.iter() {
        out.push(tuple.project(&positions), descriptor.clone());
    }
    Ok(out)
}

/// Projection to the nullary schema: the Boolean query whose answer ws-set
/// is the union of the descriptors of all rows of `relation`.
pub fn project_boolean(relation: &URelation, name: &str) -> URelation {
    let schema = Schema::new(name, &[]);
    let mut out = URelation::new(schema);
    for (_, descriptor) in relation.iter() {
        out.push(Tuple::nullary(), descriptor.clone());
    }
    out
}

/// Join `R ⋈_φ S`: pairs of tuples that satisfy `φ` on the concatenated
/// schema *and* whose ws-descriptors are consistent with each other; the
/// output descriptor is the union of the two input descriptors
/// (`U_R ⋈_{φ ∧ ψ} U_S` in the paper, where `ψ` is descriptor consistency).
pub fn join(
    left: &URelation,
    right: &URelation,
    predicate: &Predicate,
    name: &str,
) -> Result<URelation> {
    let schema = left.schema().concat(right.schema(), name);
    let mut out = URelation::new(schema.clone());
    for (lt, ld) in left.iter() {
        for (rt, rd) in right.iter() {
            // ψ: the two descriptors must have a common extension.
            let Ok(combined) = ld.union(rd) else {
                continue;
            };
            let tuple = lt.concat(rt);
            if predicate.eval(&schema, &tuple)? {
                out.push(tuple, combined);
            }
        }
    }
    Ok(out)
}

/// Cross product `R × S` (a join with the always-true condition).
pub fn product(left: &URelation, right: &URelation, name: &str) -> Result<URelation> {
    join(left, right, &Predicate::True, name)
}

/// Union `R ∪ S` of two union-compatible relations: simply the concatenation
/// of their rows (Section 3.2: ws-set union is plain set union).
pub fn union(left: &URelation, right: &URelation, name: &str) -> Result<URelation> {
    left.schema().check_union_compatible(right.schema())?;
    let schema = left.schema().renamed(name);
    let mut out = URelation::new(schema);
    for (t, d) in left.iter().chain(right.iter()) {
        out.push(t.clone(), d.clone());
    }
    Ok(out)
}

/// Renames a relation (schema name only; columns are unchanged).
pub fn rename(relation: &URelation, name: &str) -> URelation {
    let mut out = URelation::new(relation.schema().renamed(name));
    for (t, d) in relation.iter() {
        out.push(t.clone(), d.clone());
    }
    out
}

/// The answer ws-set of a query result: the union of the descriptors of all
/// rows. For Boolean queries this is the ws-set whose probability is the
/// query confidence.
pub fn answer_ws_set(relation: &URelation) -> WsSet {
    relation.answer_ws_set()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::ProbDb;
    use crate::predicate::{Comparison, Expr};
    use crate::schema::ColumnType;
    use crate::value::Value;
    use uprob_wsd::WsDescriptor;

    /// The SSN database of Figures 1/2.
    fn ssn_db() -> ProbDb {
        let mut db = ProbDb::new();
        let j = db
            .world_table_mut()
            .add_variable("j", &[(1, 0.2), (7, 0.8)])
            .unwrap();
        let b = db
            .world_table_mut()
            .add_variable("b", &[(4, 0.3), (7, 0.7)])
            .unwrap();
        let schema = Schema::new("R", &[("SSN", ColumnType::Int), ("NAME", ColumnType::Str)]);
        let mut r = db.create_relation(schema).unwrap();
        {
            let w = db.world_table();
            r.push(
                Tuple::new(vec![Value::Int(1), Value::str("John")]),
                WsDescriptor::from_pairs(w, &[(j, 1)]).unwrap(),
            );
            r.push(
                Tuple::new(vec![Value::Int(7), Value::str("John")]),
                WsDescriptor::from_pairs(w, &[(j, 7)]).unwrap(),
            );
            r.push(
                Tuple::new(vec![Value::Int(4), Value::str("Bill")]),
                WsDescriptor::from_pairs(w, &[(b, 4)]).unwrap(),
            );
            r.push(
                Tuple::new(vec![Value::Int(7), Value::str("Bill")]),
                WsDescriptor::from_pairs(w, &[(b, 7)]).unwrap(),
            );
        }
        db.insert_relation(r).unwrap();
        db
    }

    #[test]
    fn selection_keeps_descriptors() {
        let db = ssn_db();
        let r = db.relation("R").unwrap();
        let bills = select(r, &Predicate::col_eq("NAME", "Bill"), "Bills").unwrap();
        assert_eq!(bills.len(), 2);
        assert_eq!(bills.schema().name(), "Bills");
        // The descriptors are those of the Bill tuples (variable b).
        let vars = bills.answer_ws_set().variables();
        assert_eq!(vars.len(), 1);
    }

    #[test]
    fn projection_keeps_all_rows() {
        let db = ssn_db();
        let r = db.relation("R").unwrap();
        let names = project(r, &["NAME"], "Names").unwrap();
        assert_eq!(names.len(), 4);
        assert_eq!(names.schema().arity(), 1);
        // Two rows carry the tuple (John) with different descriptors.
        let john = Tuple::new(vec![Value::str("John")]);
        assert_eq!(names.tuple_ws_set(&john).len(), 2);
        assert!(project(r, &["BAD"], "P").is_err());
    }

    #[test]
    fn example_2_3_fd_violation_query() {
        // The complement of the FD SSN -> NAME holds exactly on the worlds
        // returned by the self-join with 1.SSN = 2.SSN and 1.NAME <> 2.NAME.
        let db = ssn_db();
        let r = db.relation("R").unwrap();
        let r2 = rename(r, "R2");
        let phi = Predicate::cmp(Expr::col("SSN"), Comparison::Eq, Expr::col("R2.SSN")).and(
            Predicate::cmp(Expr::col("NAME"), Comparison::Ne, Expr::col("R2.NAME")),
        );
        let violations = join(r, &r2, &phi, "V").unwrap();
        let ws = answer_ws_set(&project_boolean(&violations, "B")).normalized();
        // The violating world-set is {{j -> 7, b -> 7}} (Example 2.3).
        assert_eq!(ws.len(), 1);
        let d = &ws.descriptors()[0];
        assert_eq!(d.len(), 2);
        assert!((d.probability(db.world_table()) - 0.56).abs() < 1e-12);
    }

    #[test]
    fn join_requires_consistent_descriptors() {
        let db = ssn_db();
        let r = db.relation("R").unwrap();
        let r2 = rename(r, "R2");
        // Join on nothing: the cross product keeps only pairs with
        // consistent descriptors. Pairs like ({j->1}, {j->7}) are dropped.
        let all_pairs = product(r, &r2, "P").unwrap();
        // 4x4 = 16 pairs, minus the 4 inconsistent combinations
        // (j1/j7, j7/j1, b4/b7, b7/b4) = 12.
        assert_eq!(all_pairs.len(), 12);
    }

    #[test]
    fn algebra_commutes_with_world_instantiation() {
        // For every possible world: instantiating the query output equals
        // running the classical operators on the instantiated input.
        let db = ssn_db();
        let r = db.relation("R").unwrap();
        let query = |rel: &URelation| -> URelation {
            let bills = select(rel, &Predicate::col_eq("NAME", "Bill"), "Bills").unwrap();
            project(&bills, &["SSN"], "Q").unwrap()
        };
        let output = query(r);
        for (world, _p) in db.world_table().enumerate_worlds() {
            let out_instance = output.instantiate(&world);
            // Classical evaluation on the instantiated input.
            let input_tuples = r.instantiate(&world);
            let mut expected: Vec<Tuple> = input_tuples
                .iter()
                .filter(|t| t.get(1) == Some(&Value::str("Bill")))
                .map(|t| t.project(&[0]))
                .collect();
            expected.sort();
            expected.dedup();
            assert_eq!(out_instance, expected);
        }
    }

    #[test]
    fn union_concatenates_and_checks_compatibility() {
        let db = ssn_db();
        let r = db.relation("R").unwrap();
        let u = union(r, r, "U").unwrap();
        assert_eq!(u.len(), 8);
        let bad = URelation::new(Schema::new("S", &[("ONLY", ColumnType::Int)]));
        assert!(union(r, &bad, "U").is_err());
    }

    #[test]
    fn project_boolean_collects_all_descriptors() {
        let db = ssn_db();
        let r = db.relation("R").unwrap();
        let b = project_boolean(r, "B");
        assert_eq!(b.schema().arity(), 0);
        assert_eq!(b.len(), 4);
        assert_eq!(answer_ws_set(&b).len(), 4);
        // The answer ws-set covers all worlds: R is nonempty in every world.
        assert!(
            (answer_ws_set(&b).probability_by_enumeration(db.world_table()) - 1.0).abs() < 1e-12
        );
    }
}
