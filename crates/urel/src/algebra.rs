//! Positive relational algebra on U-relations (Section 2).
//!
//! The operations translate queries on the represented probabilistic
//! database into purely relational processing on the U-relations:
//!
//! * selections and projections simply keep the ws-descriptor of each tuple,
//! * joins additionally require the ws-descriptors of the joined tuples to
//!   be **consistent** and output the union of the two descriptors,
//! * set union concatenates the operands,
//! * the projection to a nullary schema turns a query into a Boolean query
//!   whose answer is a ws-set (the union of all answer descriptors).
//!
//! All operations are world-by-world correct: instantiating the output in a
//! possible world yields the same tuples as running the classical operator
//! on the instantiated inputs (tested below and by property tests).

use uprob_wsd::WsSet;

use crate::predicate::Predicate;
use crate::relation::URelation;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::Result;

/// Selection `σ_φ(R)`: keeps the rows whose tuple satisfies `φ`, with their
/// descriptors unchanged.
pub fn select(relation: &URelation, predicate: &Predicate, name: &str) -> Result<URelation> {
    let schema = relation.schema().renamed(name);
    let mut out = URelation::new(schema);
    for (tuple, descriptor) in relation.iter() {
        if predicate.eval(relation.schema(), tuple)? {
            out.push(tuple.clone(), descriptor.clone());
        }
    }
    Ok(out)
}

/// Projection `π_A(R)`: projects every tuple onto the named columns, keeping
/// its descriptor (the paper's `π_{WSD, A}`). Duplicate tuples are *not*
/// merged; they represent alternative derivations in different world-sets.
pub fn project(relation: &URelation, columns: &[&str], name: &str) -> Result<URelation> {
    let schema = relation.schema().project(columns, name)?;
    let positions: Vec<usize> = columns
        .iter()
        .map(|c| relation.schema().column_index(c))
        .collect::<Result<_>>()?;
    let mut out = URelation::new(schema);
    for (tuple, descriptor) in relation.iter() {
        out.push(tuple.project(&positions), descriptor.clone());
    }
    Ok(out)
}

/// Projection to the nullary schema: the Boolean query whose answer ws-set
/// is the union of the descriptors of all rows of `relation`.
pub fn project_boolean(relation: &URelation, name: &str) -> URelation {
    let schema = Schema::new(name, &[]);
    let mut out = URelation::new(schema);
    for (_, descriptor) in relation.iter() {
        out.push(Tuple::nullary(), descriptor.clone());
    }
    out
}

/// Join `R ⋈_φ S`: pairs of tuples that satisfy `φ` on the concatenated
/// schema *and* whose ws-descriptors are consistent with each other; the
/// output descriptor is the union of the two input descriptors
/// (`U_R ⋈_{φ ∧ ψ} U_S` in the paper, where `ψ` is descriptor consistency).
pub fn join(
    left: &URelation,
    right: &URelation,
    predicate: &Predicate,
    name: &str,
) -> Result<URelation> {
    let schema = left.schema().concat(right.schema(), name);
    let mut out = URelation::new(schema.clone());
    for (lt, ld) in left.iter() {
        for (rt, rd) in right.iter() {
            // ψ: the two descriptors must have a common extension. The
            // consistency check is an allocation-free merge scan, so
            // inconsistent pairs are skipped before paying for the tuple
            // concatenation, the predicate evaluation, or the descriptor
            // union (which is only materialised for matching pairs).
            if !ld.is_consistent_with(rd) {
                continue;
            }
            let tuple = lt.concat(rt);
            if predicate.eval(&schema, &tuple)? {
                let combined = ld
                    .union(rd)
                    // uprob-lint: allow(panic-expect) -- the `is_consistent_with` filter above guarantees the union exists
                    .expect("consistent descriptors always have a union");
                out.push(tuple, combined);
            }
        }
    }
    Ok(out)
}

/// Cross product `R × S` (a join with the always-true condition).
pub fn product(left: &URelation, right: &URelation, name: &str) -> Result<URelation> {
    join(left, right, &Predicate::True, name)
}

/// Union `R ∪ S` of two union-compatible relations: simply the concatenation
/// of their rows (Section 3.2: ws-set union is plain set union).
pub fn union(left: &URelation, right: &URelation, name: &str) -> Result<URelation> {
    left.schema().check_union_compatible(right.schema())?;
    let schema = left.schema().renamed(name);
    let mut out = URelation::new(schema);
    for (t, d) in left.iter().chain(right.iter()) {
        out.push(t.clone(), d.clone());
    }
    Ok(out)
}

/// Duplicate elimination `δ(R)`: drops rows whose `(tuple, descriptor)`
/// pair already occurred, keeping first occurrences in order. World-by-world
/// correct: identical rows are present in exactly the same worlds, so the
/// instantiated output (a set) is unchanged. Rows carrying the same tuple
/// under *different* descriptors are kept — they are distinct derivations
/// and their world-sets union in [`URelation::tuple_ws_set`].
pub fn distinct(relation: &URelation) -> URelation {
    let mut seen: uprob_wsd::FxHashSet<(&Tuple, &uprob_wsd::WsDescriptor)> =
        uprob_wsd::FxHashSet::default();
    let mut out = URelation::new(relation.schema().clone());
    for (t, d) in relation.iter() {
        if seen.insert((t, d)) {
            out.push(t.clone(), d.clone());
        }
    }
    out
}

/// Renames a relation (schema name only; columns are unchanged).
pub fn rename(relation: &URelation, name: &str) -> URelation {
    let mut out = URelation::new(relation.schema().renamed(name));
    for (t, d) in relation.iter() {
        out.push(t.clone(), d.clone());
    }
    out
}

/// The answer ws-set of a query result: the union of the descriptors of all
/// rows. For Boolean queries this is the ws-set whose probability is the
/// query confidence.
pub fn answer_ws_set(relation: &URelation) -> WsSet {
    relation.answer_ws_set()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::ProbDb;
    use crate::predicate::{Comparison, Expr};
    use crate::schema::ColumnType;
    use crate::value::Value;
    use uprob_wsd::WsDescriptor;

    /// The SSN database of Figures 1/2.
    fn ssn_db() -> ProbDb {
        let mut db = ProbDb::new();
        let j = db
            .world_table_mut()
            .add_variable("j", &[(1, 0.2), (7, 0.8)])
            .unwrap();
        let b = db
            .world_table_mut()
            .add_variable("b", &[(4, 0.3), (7, 0.7)])
            .unwrap();
        let schema = Schema::new("R", &[("SSN", ColumnType::Int), ("NAME", ColumnType::Str)]);
        let mut r = db.create_relation(schema).unwrap();
        {
            let w = db.world_table();
            r.push(
                Tuple::new(vec![Value::Int(1), Value::str("John")]),
                WsDescriptor::from_pairs(w, &[(j, 1)]).unwrap(),
            );
            r.push(
                Tuple::new(vec![Value::Int(7), Value::str("John")]),
                WsDescriptor::from_pairs(w, &[(j, 7)]).unwrap(),
            );
            r.push(
                Tuple::new(vec![Value::Int(4), Value::str("Bill")]),
                WsDescriptor::from_pairs(w, &[(b, 4)]).unwrap(),
            );
            r.push(
                Tuple::new(vec![Value::Int(7), Value::str("Bill")]),
                WsDescriptor::from_pairs(w, &[(b, 7)]).unwrap(),
            );
        }
        db.insert_relation(r).unwrap();
        db
    }

    #[test]
    fn selection_keeps_descriptors() {
        let db = ssn_db();
        let r = db.relation("R").unwrap();
        let bills = select(r, &Predicate::col_eq("NAME", "Bill"), "Bills").unwrap();
        assert_eq!(bills.len(), 2);
        assert_eq!(bills.schema().name(), "Bills");
        // The descriptors are those of the Bill tuples (variable b).
        let vars = bills.answer_ws_set().variables();
        assert_eq!(vars.len(), 1);
    }

    #[test]
    fn projection_keeps_all_rows() {
        let db = ssn_db();
        let r = db.relation("R").unwrap();
        let names = project(r, &["NAME"], "Names").unwrap();
        assert_eq!(names.len(), 4);
        assert_eq!(names.schema().arity(), 1);
        // Two rows carry the tuple (John) with different descriptors.
        let john = Tuple::new(vec![Value::str("John")]);
        assert_eq!(names.tuple_ws_set(&john).len(), 2);
        assert!(project(r, &["BAD"], "P").is_err());
    }

    #[test]
    fn example_2_3_fd_violation_query() {
        // The complement of the FD SSN -> NAME holds exactly on the worlds
        // returned by the self-join with 1.SSN = 2.SSN and 1.NAME <> 2.NAME.
        let db = ssn_db();
        let r = db.relation("R").unwrap();
        let r2 = rename(r, "R2");
        let phi = Predicate::cmp(Expr::col("SSN"), Comparison::Eq, Expr::col("R2.SSN")).and(
            Predicate::cmp(Expr::col("NAME"), Comparison::Ne, Expr::col("R2.NAME")),
        );
        let violations = join(r, &r2, &phi, "V").unwrap();
        let ws = answer_ws_set(&project_boolean(&violations, "B")).normalized();
        // The violating world-set is {{j -> 7, b -> 7}} (Example 2.3).
        assert_eq!(ws.len(), 1);
        let d = &ws.descriptors()[0];
        assert_eq!(d.len(), 2);
        assert!((d.probability(db.world_table()) - 0.56).abs() < 1e-12);
    }

    #[test]
    fn join_requires_consistent_descriptors() {
        let db = ssn_db();
        let r = db.relation("R").unwrap();
        let r2 = rename(r, "R2");
        // Join on nothing: the cross product keeps only pairs with
        // consistent descriptors. Pairs like ({j->1}, {j->7}) are dropped.
        let all_pairs = product(r, &r2, "P").unwrap();
        // 4x4 = 16 pairs, minus the 4 inconsistent combinations
        // (j1/j7, j7/j1, b4/b7, b7/b4) = 12.
        assert_eq!(all_pairs.len(), 12);
    }

    #[test]
    fn algebra_commutes_with_world_instantiation() {
        // For every possible world: instantiating the query output equals
        // running the classical operators on the instantiated input.
        let db = ssn_db();
        let r = db.relation("R").unwrap();
        let query = |rel: &URelation| -> URelation {
            let bills = select(rel, &Predicate::col_eq("NAME", "Bill"), "Bills").unwrap();
            project(&bills, &["SSN"], "Q").unwrap()
        };
        let output = query(r);
        for (world, _p) in db.world_table().enumerate_worlds() {
            let out_instance = output.instantiate(&world);
            // Classical evaluation on the instantiated input.
            let input_tuples = r.instantiate(&world);
            let mut expected: Vec<Tuple> = input_tuples
                .iter()
                .filter(|t| t.get(1) == Some(&Value::str("Bill")))
                .map(|t| t.project(&[0]))
                .collect();
            expected.sort();
            expected.dedup();
            assert_eq!(out_instance, expected);
        }
    }

    #[test]
    fn join_skips_inconsistent_pairs_before_the_predicate() {
        // A predicate that errors on evaluation: if the join evaluated it
        // on descriptor-inconsistent pairs, every pairing below would fail.
        // Two single-row relations whose descriptors assign the same
        // variable different values are inconsistent, so the bad predicate
        // is never reached and the join is empty.
        let mut w = uprob_wsd::WorldTable::new();
        let x = w.add_variable("x", &[(0, 0.5), (1, 0.5)]).unwrap();
        let schema = Schema::new("L", &[("A", ColumnType::Int)]);
        let mut l = URelation::new(schema);
        l.push(
            Tuple::new(vec![Value::Int(1)]),
            WsDescriptor::from_pairs(&w, &[(x, 0)]).unwrap(),
        );
        let mut r = URelation::new(Schema::new("R", &[("B", ColumnType::Int)]));
        r.push(
            Tuple::new(vec![Value::Int(2)]),
            WsDescriptor::from_pairs(&w, &[(x, 1)]).unwrap(),
        );
        let bad = Predicate::col_eq("NO_SUCH_COLUMN", 0i64);
        let joined = join(&l, &r, &bad, "J").unwrap();
        assert!(joined.is_empty());
        let crossed = product(&l, &r, "P").unwrap();
        assert!(crossed.is_empty());
        // With a consistent right side the predicate *is* evaluated and the
        // error surfaces.
        let mut r2 = URelation::new(Schema::new("R2", &[("B", ColumnType::Int)]));
        r2.push(
            Tuple::new(vec![Value::Int(2)]),
            WsDescriptor::from_pairs(&w, &[(x, 0)]).unwrap(),
        );
        assert!(join(&l, &r2, &bad, "J").is_err());
    }

    #[test]
    fn join_with_empty_relations_is_empty() {
        let db = ssn_db();
        let r = db.relation("R").unwrap();
        let empty = URelation::new(r.schema().renamed("E"));
        for (a, b) in [(r, &empty), (&empty, r), (&empty, &empty)] {
            let j = join(a, b, &Predicate::True, "J").unwrap();
            assert!(j.is_empty());
            assert_eq!(j.schema().arity(), 4);
            assert!(product(a, b, "P").unwrap().is_empty());
        }
    }

    #[test]
    fn self_join_keeps_identical_descriptor_pairs() {
        // Self-join with the same variable on both sides: a row paired with
        // itself has a (trivially consistent) identical descriptor, and the
        // union is that descriptor again — no duplicated assignments.
        let db = ssn_db();
        let r = db.relation("R").unwrap();
        let r2 = rename(r, "R2");
        let self_pairs = join(
            r,
            &r2,
            &Predicate::cols_eq("SSN", "R2.SSN").and(Predicate::cols_eq("NAME", "R2.NAME")),
            "S",
        )
        .unwrap();
        // Exactly the four diagonal pairs survive (distinct rows differ in
        // SSN or NAME, or are descriptor-inconsistent).
        assert_eq!(self_pairs.len(), 4);
        for (tuple, descriptor) in self_pairs.iter() {
            assert_eq!(descriptor.len(), 1, "no duplicated assignments");
            assert_eq!(tuple.get(0), tuple.get(2));
            assert_eq!(tuple.get(1), tuple.get(3));
        }
        // World-by-world, the self-join equals the classical self-join of
        // the instantiated input.
        for (world, _p) in db.world_table().enumerate_worlds() {
            let got = self_pairs.instantiate(&world);
            let expected: Vec<Tuple> = {
                let mut v: Vec<Tuple> = r.instantiate(&world).iter().map(|t| t.concat(t)).collect();
                v.sort();
                v
            };
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn distinct_drops_only_identical_rows() {
        let db = ssn_db();
        let r = db.relation("R").unwrap();
        // Duplicate every row and add a same-tuple/different-descriptor row.
        let mut doubled = union(r, r, "U").unwrap();
        let extra = Tuple::new(vec![Value::Int(7), Value::str("Bill")]);
        doubled.push(extra.clone(), WsDescriptor::empty());
        let deduped = distinct(&doubled);
        // 4 distinct rows + the extra derivation of (7, Bill).
        assert_eq!(deduped.len(), 5);
        assert_eq!(deduped.tuple_ws_set(&extra).len(), 2);
        // Idempotent, and a no-op on an already-duplicate-free relation.
        assert_eq!(distinct(&deduped), deduped);
        assert_eq!(distinct(r).len(), 4);
    }

    #[test]
    fn union_concatenates_and_checks_compatibility() {
        let db = ssn_db();
        let r = db.relation("R").unwrap();
        let u = union(r, r, "U").unwrap();
        assert_eq!(u.len(), 8);
        let bad = URelation::new(Schema::new("S", &[("ONLY", ColumnType::Int)]));
        assert!(union(r, &bad, "U").is_err());
    }

    #[test]
    fn project_boolean_collects_all_descriptors() {
        let db = ssn_db();
        let r = db.relation("R").unwrap();
        let b = project_boolean(r, "B");
        assert_eq!(b.schema().arity(), 0);
        assert_eq!(b.len(), 4);
        assert_eq!(answer_ws_set(&b).len(), 4);
        // The answer ws-set covers all worlds: R is nonempty in every world.
        assert!(
            (answer_ws_set(&b).probability_by_enumeration(db.world_table()) - 1.0).abs() < 1e-12
        );
    }
}
