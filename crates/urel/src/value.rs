//! Relational values.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A relational attribute value.
///
/// Values have a total order (floats are ordered with
/// [`f64::total_cmp`]) so they can be used in sort-merge style operations
/// and as hash-map keys.
#[derive(Clone, Debug)]
pub enum Value {
    /// SQL NULL. Compares equal to itself and smaller than any other value.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// The integer content, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The float content; integers are widened to floats.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The string content, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean content, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True if this value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Rank used to order values of different types.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Str(_) => 4,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            // Mixed numeric comparison: compare as floats, break ties by type.
            (Int(a), Float(b)) => (*a as f64).total_cmp(b).then(Ordering::Less),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)).then(Ordering::Greater),
            (Str(a), Str(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            Value::Int(i) => {
                2u8.hash(state);
                i.hash(state);
            }
            Value::Float(f) => {
                3u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                4u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_float(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::str("a").as_str(), Some("a"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert!(Value::Null.is_null());
        assert_eq!(Value::str("a").as_int(), None);
    }

    #[test]
    fn ordering_within_types() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::str("a") < Value::str("b"));
        assert!(Value::Float(1.5) < Value::Float(2.5));
        assert!(Value::Bool(false) < Value::Bool(true));
        assert_eq!(Value::Null, Value::Null);
    }

    #[test]
    fn ordering_across_types_is_total() {
        let mut values = vec![
            Value::str("z"),
            Value::Int(5),
            Value::Null,
            Value::Float(1.0),
            Value::Bool(true),
        ];
        values.sort();
        assert!(values[0].is_null());
        // Sorting twice yields the same order (total order, no panics).
        let again = {
            let mut v = values.clone();
            v.sort();
            v
        };
        assert_eq!(values, again);
    }

    #[test]
    fn mixed_numeric_comparison() {
        assert!(Value::Int(1) < Value::Float(1.5));
        assert!(Value::Float(0.5) < Value::Int(1));
        assert_ne!(Value::Int(1), Value::Float(1.0));
    }

    #[test]
    fn hash_and_eq_agree() {
        let mut set = HashSet::new();
        set.insert(Value::Int(1));
        set.insert(Value::Int(1));
        set.insert(Value::str("1"));
        set.insert(Value::Float(1.0));
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn display_and_from() {
        assert_eq!(Value::from(3i64).to_string(), "3");
        assert_eq!(Value::from("abc").to_string(), "abc");
        assert_eq!(Value::from(true).to_string(), "true");
        assert_eq!(Value::from(2.5).to_string(), "2.5");
        assert_eq!(Value::Null.to_string(), "NULL");
    }
}
