//! Logical query plans over U-relations.
//!
//! A [`Plan`] is an AST over the positive relational algebra of
//! [`crate::algebra`] — scan, select, project, join, product, union,
//! rename and distinct — evaluated against a [`crate::ProbDb`]. Plans
//! decouple *what* a query computes from *how* it is computed:
//!
//! * [`execute_plan_eager`] is the reference interpreter: every node maps
//!   one-to-one onto the eager, materializing `algebra::*` free functions
//!   (nested-loop joins included), and is what the differential
//!   plan-equivalence harness trusts;
//! * [`crate::optimize_plan`] rewrites a plan with the classical rule set
//!   (predicate/projection pushdown, select-product → join recognition,
//!   trivial-predicate and empty-relation pruning);
//! * [`crate::execute_plan`] runs a plan through the pipelined executor,
//!   which streams rows between operators and replaces nested-loop
//!   equi-joins with hash joins.
//!
//! The ws-descriptor attached to every tuple is **not** a plan-visible
//! column: it rides alongside each row through every operator (the paper's
//! `π_{WSD, A}` convention), so no optimizer rule can drop it — projection
//! pushdown narrows attribute columns only and descriptor consistency is
//! enforced by the join operators themselves.
//!
//! Projection to the empty column list produces the nullary schema, i.e.
//! the Boolean query whose answer ws-set is the union of all surviving
//! descriptors (Section 7 of the paper).

use std::fmt;

use crate::algebra;
use crate::database::ProbDb;
use crate::predicate::Predicate;
use crate::relation::URelation;
use crate::schema::Schema;
use crate::Result;

/// A logical query plan node.
///
/// Built with the consuming combinators ([`Plan::scan`],
/// [`Plan::select`], …) and evaluated with [`ProbDb::query`] (optimized +
/// pipelined), [`ProbDb::query_unoptimized`] (pipelined only) or
/// [`ProbDb::query_eager`] (the materializing reference).
#[derive(Clone, Debug, PartialEq)]
pub enum Plan {
    /// Scan of a stored relation by name.
    Scan {
        /// Name of the stored relation.
        relation: String,
    },
    /// A statically empty relation with a known schema. Produced by the
    /// optimizer's empty-relation pruning; never necessary in hand-written
    /// plans.
    Empty {
        /// Schema of the (empty) output.
        schema: Schema,
    },
    /// Selection `σ_φ(input)`.
    Select {
        /// Input plan.
        input: Box<Plan>,
        /// Row predicate over the input schema.
        predicate: Predicate,
    },
    /// Projection `π_A(input)` onto the named columns (the empty list is
    /// the projection to the nullary, Boolean schema).
    Project {
        /// Input plan.
        input: Box<Plan>,
        /// Output columns, by name, in order.
        columns: Vec<String>,
    },
    /// Join `left ⋈_φ right` (descriptor consistency is always required in
    /// addition to `φ`).
    Join {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
        /// Join predicate over the concatenated schema.
        predicate: Predicate,
    },
    /// Cross product `left × right` (with descriptor consistency).
    Product {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
    },
    /// Union of two union-compatible inputs (row concatenation; the output
    /// schema is the left input's).
    Union {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
    },
    /// Renames the output relation (columns are unchanged; the name drives
    /// the `rel.column` disambiguation of later join concatenations).
    Rename {
        /// Input plan.
        input: Box<Plan>,
        /// New relation name.
        name: String,
    },
    /// Duplicate elimination: drops repeated `(tuple, descriptor)` rows
    /// (world-by-world a no-op — instances are sets).
    Distinct {
        /// Input plan.
        input: Box<Plan>,
    },
}

impl Plan {
    /// Scan of the stored relation `relation`.
    pub fn scan(relation: &str) -> Plan {
        Plan::Scan {
            relation: relation.to_string(),
        }
    }

    /// A statically empty relation with the given schema.
    pub fn empty(schema: Schema) -> Plan {
        Plan::Empty { schema }
    }

    /// Selection with `predicate`.
    pub fn select(self, predicate: Predicate) -> Plan {
        Plan::Select {
            input: Box::new(self),
            predicate,
        }
    }

    /// Projection onto `columns` (empty for the Boolean, nullary
    /// projection).
    pub fn project(self, columns: &[&str]) -> Plan {
        Plan::Project {
            input: Box::new(self),
            columns: columns.iter().map(|c| c.to_string()).collect(),
        }
    }

    /// Join with `right` on `predicate`.
    pub fn join_on(self, right: Plan, predicate: Predicate) -> Plan {
        Plan::Join {
            left: Box::new(self),
            right: Box::new(right),
            predicate,
        }
    }

    /// Cross product with `right`.
    pub fn product(self, right: Plan) -> Plan {
        Plan::Product {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// Union with `right` (must be union-compatible).
    pub fn union(self, right: Plan) -> Plan {
        Plan::Union {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// Renames the output relation.
    pub fn rename(self, name: &str) -> Plan {
        Plan::Rename {
            input: Box::new(self),
            name: name.to_string(),
        }
    }

    /// Duplicate elimination.
    pub fn distinct(self) -> Plan {
        Plan::Distinct {
            input: Box::new(self),
        }
    }

    /// Computes the output schema of this plan against `db`, validating the
    /// plan along the way: referenced relations and columns must exist,
    /// selection/join predicates must type-check
    /// ([`Predicate::validate`]) and union operands must be
    /// union-compatible.
    ///
    /// Both executors and the optimizer validate through this method first,
    /// so a malformed plan fails identically on every path — including
    /// subtrees an execution would never reach (empty inputs, pruned
    /// branches, predicates short-circuited per row).
    ///
    /// # Errors
    ///
    /// Returns the first validation error found (bottom-up, left to
    /// right).
    pub fn output_schema(&self, db: &ProbDb) -> Result<Schema> {
        match self {
            Plan::Scan { relation } => Ok(db.relation(relation)?.schema().clone()),
            Plan::Empty { schema } => Ok(schema.clone()),
            Plan::Select { input, predicate } => {
                let schema = input.output_schema(db)?;
                predicate.validate(&schema)?;
                Ok(schema)
            }
            Plan::Project { input, columns } => {
                let schema = input.output_schema(db)?;
                let names: Vec<&str> = columns.iter().map(String::as_str).collect();
                schema.project(&names, schema.name())
            }
            Plan::Join {
                left,
                right,
                predicate,
            } => {
                let l = left.output_schema(db)?;
                let r = right.output_schema(db)?;
                let concat = l.concat(&r, l.name());
                predicate.validate(&concat)?;
                Ok(concat)
            }
            Plan::Product { left, right } => {
                let l = left.output_schema(db)?;
                let r = right.output_schema(db)?;
                Ok(l.concat(&r, l.name()))
            }
            Plan::Union { left, right } => {
                let l = left.output_schema(db)?;
                let r = right.output_schema(db)?;
                l.check_union_compatible(&r)?;
                Ok(l)
            }
            Plan::Rename { input, name } => Ok(input.output_schema(db)?.renamed(name)),
            Plan::Distinct { input } => input.output_schema(db),
        }
    }

    /// The names of the stored relations this plan scans, de-duplicated,
    /// in first-use order (left to right, bottom up).
    pub fn scanned_relations(&self) -> Vec<&str> {
        fn walk<'a>(plan: &'a Plan, out: &mut Vec<&'a str>) {
            match plan {
                Plan::Scan { relation } => {
                    if !out.contains(&relation.as_str()) {
                        out.push(relation);
                    }
                }
                Plan::Empty { .. } => {}
                Plan::Select { input, .. }
                | Plan::Project { input, .. }
                | Plan::Rename { input, .. }
                | Plan::Distinct { input } => walk(input, out),
                Plan::Join { left, right, .. }
                | Plan::Product { left, right }
                | Plan::Union { left, right } => {
                    walk(left, out);
                    walk(right, out);
                }
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }

    /// Number of nodes in the plan tree.
    pub fn node_count(&self) -> usize {
        1 + match self {
            Plan::Scan { .. } | Plan::Empty { .. } => 0,
            Plan::Select { input, .. }
            | Plan::Project { input, .. }
            | Plan::Rename { input, .. }
            | Plan::Distinct { input } => input.node_count(),
            Plan::Join { left, right, .. }
            | Plan::Product { left, right }
            | Plan::Union { left, right } => left.node_count() + right.node_count(),
        }
    }

    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        let pad = "  ".repeat(depth);
        match self {
            Plan::Scan { relation } => writeln!(f, "{pad}Scan {relation}"),
            Plan::Empty { schema } => writeln!(f, "{pad}Empty {schema}"),
            Plan::Select { input, predicate } => {
                writeln!(f, "{pad}Select {predicate}")?;
                input.fmt_indented(f, depth + 1)
            }
            Plan::Project { input, columns } => {
                writeln!(f, "{pad}Project [{}]", columns.join(", "))?;
                input.fmt_indented(f, depth + 1)
            }
            Plan::Join {
                left,
                right,
                predicate,
            } => {
                writeln!(f, "{pad}Join {predicate}")?;
                left.fmt_indented(f, depth + 1)?;
                right.fmt_indented(f, depth + 1)
            }
            Plan::Product { left, right } => {
                writeln!(f, "{pad}Product")?;
                left.fmt_indented(f, depth + 1)?;
                right.fmt_indented(f, depth + 1)
            }
            Plan::Union { left, right } => {
                writeln!(f, "{pad}Union")?;
                left.fmt_indented(f, depth + 1)?;
                right.fmt_indented(f, depth + 1)
            }
            Plan::Rename { input, name } => {
                writeln!(f, "{pad}Rename {name}")?;
                input.fmt_indented(f, depth + 1)
            }
            Plan::Distinct { input } => {
                writeln!(f, "{pad}Distinct")?;
                input.fmt_indented(f, depth + 1)
            }
        }
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indented(f, 0)
    }
}

/// The eager reference interpreter: validates the plan, then evaluates it
/// bottom-up through the materializing [`crate::algebra`] operators
/// (nested-loop joins, full intermediate relations). Quadratic joins —
/// use [`crate::execute_plan`] (or [`ProbDb::query`]) for anything large;
/// this path exists as the semantics oracle the optimizer and the
/// pipelined executor are differentially tested against.
///
/// # Errors
///
/// Returns plan-validation errors (unknown relations/columns, predicate
/// type errors, union incompatibility).
pub fn execute_plan_eager(db: &ProbDb, plan: &Plan) -> Result<URelation> {
    plan.output_schema(db)?;
    eval_eager(db, plan)
}

fn eval_eager(db: &ProbDb, plan: &Plan) -> Result<URelation> {
    match plan {
        Plan::Scan { relation } => Ok(db.relation(relation)?.clone()),
        Plan::Empty { schema } => Ok(URelation::new(schema.clone())),
        Plan::Select { input, predicate } => {
            let rel = eval_eager(db, input)?;
            let name = rel.schema().name().to_string();
            algebra::select(&rel, predicate, &name)
        }
        Plan::Project { input, columns } => {
            let rel = eval_eager(db, input)?;
            let name = rel.schema().name().to_string();
            let names: Vec<&str> = columns.iter().map(String::as_str).collect();
            algebra::project(&rel, &names, &name)
        }
        Plan::Join {
            left,
            right,
            predicate,
        } => {
            let l = eval_eager(db, left)?;
            let r = eval_eager(db, right)?;
            let name = l.schema().name().to_string();
            algebra::join(&l, &r, predicate, &name)
        }
        Plan::Product { left, right } => {
            let l = eval_eager(db, left)?;
            let r = eval_eager(db, right)?;
            let name = l.schema().name().to_string();
            algebra::product(&l, &r, &name)
        }
        Plan::Union { left, right } => {
            let l = eval_eager(db, left)?;
            let r = eval_eager(db, right)?;
            let name = l.schema().name().to_string();
            algebra::union(&l, &r, &name)
        }
        Plan::Rename { input, name } => Ok(algebra::rename(&eval_eager(db, input)?, name)),
        Plan::Distinct { input } => Ok(algebra::distinct(&eval_eager(db, input)?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::tests::ssn_db;
    use crate::predicate::{Comparison, Expr};
    use crate::schema::ColumnType;
    use crate::UrelError;

    /// The FD-violation self-join of Example 2.3 as a plan.
    fn violation_plan() -> Plan {
        Plan::scan("R")
            .join_on(
                Plan::scan("R").rename("R2"),
                Predicate::cols_eq("SSN", "R2.SSN").and(Predicate::cmp(
                    Expr::col("NAME"),
                    Comparison::Ne,
                    Expr::col("R2.NAME"),
                )),
            )
            .project(&[])
    }

    #[test]
    fn output_schema_tracks_operators() {
        let db = ssn_db();
        let plan = Plan::scan("R")
            .select(Predicate::col_eq("NAME", "Bill"))
            .project(&["SSN"]);
        let schema = plan.output_schema(&db).unwrap();
        assert_eq!(schema.arity(), 1);
        assert_eq!(schema.columns()[0].name, "SSN");
        assert_eq!(schema.name(), "R");

        let joined = Plan::scan("R").join_on(
            Plan::scan("R").rename("R2"),
            Predicate::cols_eq("SSN", "R2.SSN"),
        );
        let js = joined.output_schema(&db).unwrap();
        assert_eq!(js.arity(), 4);
        assert_eq!(js.columns()[2].name, "R2.SSN");

        // Nullary projection: the Boolean query schema.
        let boolean = violation_plan();
        assert_eq!(boolean.output_schema(&db).unwrap().arity(), 0);
    }

    #[test]
    fn validation_catches_errors_everywhere() {
        let db = ssn_db();
        assert!(matches!(
            Plan::scan("NOPE").output_schema(&db),
            Err(UrelError::UnknownRelation { .. })
        ));
        assert!(matches!(
            Plan::scan("R")
                .select(Predicate::col_eq("MISSING", 1i64))
                .output_schema(&db),
            Err(UrelError::UnknownColumn { .. })
        ));
        assert!(matches!(
            Plan::scan("R")
                .select(Predicate::col_eq("NAME", 7i64))
                .output_schema(&db),
            Err(UrelError::TypeError { .. })
        ));
        assert!(matches!(
            Plan::scan("R").project(&["SSN", "BAD"]).output_schema(&db),
            Err(UrelError::UnknownColumn { .. })
        ));
        let incompatible = Plan::scan("R").union(Plan::scan("R").project(&["SSN"]));
        assert!(matches!(
            incompatible.output_schema(&db),
            Err(UrelError::SchemaMismatch { .. })
        ));
        // Eager execution validates up front: the error surfaces even
        // though the selection would never evaluate its predicate (the
        // input row stream could be empty).
        let unreachable = Plan::scan("R")
            .select(Predicate::col_eq("NAME", "Nobody"))
            .select(Predicate::col_eq("MISSING", 1i64));
        assert!(execute_plan_eager(&db, &unreachable).is_err());
    }

    #[test]
    fn eager_execution_matches_the_algebra() {
        let db = ssn_db();
        let plan = Plan::scan("R")
            .select(Predicate::col_eq("NAME", "Bill"))
            .project(&["SSN"]);
        let got = execute_plan_eager(&db, &plan).unwrap();
        let expected = {
            let bills = algebra::select(
                db.relation("R").unwrap(),
                &Predicate::col_eq("NAME", "Bill"),
                "R",
            )
            .unwrap();
            algebra::project(&bills, &["SSN"], "R").unwrap()
        };
        assert_eq!(got, expected);

        // Example 2.3 through the plan: P(violation) world-set is
        // {{j->7, b->7}}.
        let ws = execute_plan_eager(&db, &violation_plan())
            .unwrap()
            .answer_ws_set()
            .normalized();
        assert_eq!(ws.len(), 1);
        assert!((ws.descriptors()[0].probability(db.world_table()) - 0.56).abs() < 1e-12);
    }

    #[test]
    fn display_renders_the_tree() {
        let plan = violation_plan();
        let text = plan.to_string();
        assert!(text.contains("Project []"));
        assert!(text.contains("Join"));
        assert!(text.contains("Rename R2"));
        assert!(text.contains("Scan R"));
        assert_eq!(plan.node_count(), 5);
    }

    #[test]
    fn union_product_distinct_and_empty_evaluate() {
        let db = ssn_db();
        let u = Plan::scan("R").union(Plan::scan("R"));
        assert_eq!(execute_plan_eager(&db, &u).unwrap().len(), 8);
        assert_eq!(
            execute_plan_eager(&db, &u.clone().distinct())
                .unwrap()
                .len(),
            4
        );
        let p = Plan::scan("R").product(Plan::scan("R").rename("R2"));
        assert_eq!(execute_plan_eager(&db, &p).unwrap().len(), 12);
        let schema = Schema::new("E", &[("X", ColumnType::Int)]);
        let e = Plan::empty(schema.clone());
        let out = execute_plan_eager(&db, &e).unwrap();
        assert!(out.is_empty());
        assert_eq!(out.schema(), &schema);
    }
}
