//! Delta mutation on a snapshot: append/retract rows and append variables,
//! producing a new [`ProbDb`] without a full rebuild.
//!
//! The builder clones the base database once and stages all mutations on the
//! clone; [`DeltaBuilder::finish`] hands back the mutated database together
//! with a [`DeltaReport`] naming exactly which relations were touched and
//! which variables were added. The report is what the incremental layers
//! consume: the decomposition cache inherits entries disjoint from the
//! touched set, and delta conditioning re-derives violation ws-sets only for
//! constraints over touched relations.
//!
//! Deltas are **append-only on the world table**: existing variables keep
//! their [`VarId`]s, names, domains and distributions bit-for-bit, which is
//! the property that makes cross-snapshot cache inheritance sound (a cached
//! `P(ws-set)` depends only on the distributions of the variables the set
//! mentions).
//!
//! [`VarId`]: uprob_wsd::VarId

use uprob_wsd::{DomainValue, VarId, WorldTable, WorldTableDelta, WsDescriptor};

use crate::database::ProbDb;
use crate::tuple::Tuple;
use crate::Result;

/// Summary of one applied delta: which relations changed and how.
#[derive(Clone, Debug, Default)]
pub struct DeltaReport {
    /// Names of relations that gained or lost rows, sorted and deduplicated.
    pub touched_relations: Vec<String>,
    /// Variables appended to the world table by this delta.
    pub added_variables: Vec<VarId>,
    /// Number of rows appended across all relations.
    pub appended_rows: usize,
    /// Number of rows retracted across all relations.
    pub retracted_rows: usize,
    /// Stamp of the world table after the delta (equal to the base stamp iff
    /// no variable was added).
    pub world_stamp: u64,
}

impl DeltaReport {
    /// True if the delta touched the named relation.
    pub fn touched(&self, relation: &str) -> bool {
        self.touched_relations.iter().any(|r| r == relation)
    }

    /// True if nothing changed (no rows, no variables).
    pub fn is_empty(&self) -> bool {
        self.touched_relations.is_empty() && self.added_variables.is_empty()
    }
}

/// Stages append/retract mutations against a snapshot of a [`ProbDb`].
///
/// Every mutation is validated eagerly against the staged state, so a
/// builder that never returned an error produces a database that passes
/// [`ProbDb::validate`]. The base database is untouched throughout.
#[derive(Clone, Debug)]
pub struct DeltaBuilder {
    db: ProbDb,
    touched: Vec<String>,
    added_variables: Vec<VarId>,
    appended_rows: usize,
    retracted_rows: usize,
}

impl DeltaBuilder {
    /// Starts a delta over a clone of `base`.
    pub fn new(base: &ProbDb) -> DeltaBuilder {
        DeltaBuilder {
            db: base.clone(),
            touched: Vec::new(),
            added_variables: Vec::new(),
            appended_rows: 0,
            retracted_rows: 0,
        }
    }

    /// The world table of the staged state (base variables plus any added by
    /// this delta) — use it to build descriptors for [`DeltaBuilder::append`].
    pub fn world_table(&self) -> &WorldTable {
        self.db.world_table()
    }

    /// Appends a fresh variable to the staged world table.
    ///
    /// # Errors
    ///
    /// Propagates world-table validation errors (duplicate name, bad
    /// distribution, …); the staged state is unchanged on error.
    pub fn add_variable(
        &mut self,
        name: &str,
        alternatives: &[(DomainValue, f64)],
    ) -> Result<VarId> {
        let id = self.db.world_table_mut().add_variable(name, alternatives)?;
        self.added_variables.push(id);
        Ok(id)
    }

    /// Appends a fresh Boolean variable (`1` with probability `p`).
    pub fn add_boolean(&mut self, name: &str, p: f64) -> Result<VarId> {
        let id = self.db.world_table_mut().add_boolean(name, p)?;
        self.added_variables.push(id);
        Ok(id)
    }

    /// Applies a staged [`WorldTableDelta`] atomically.
    ///
    /// # Errors
    ///
    /// Propagates validation errors; on error nothing is applied.
    pub fn apply_world_delta(&mut self, delta: &WorldTableDelta) -> Result<Vec<VarId>> {
        let ids = self.db.world_table_mut().apply_delta(delta)?;
        self.added_variables.extend(ids.iter().copied());
        Ok(ids)
    }

    /// Appends a row to `relation`, validating the tuple against the schema
    /// and the descriptor against the staged world table.
    ///
    /// # Errors
    ///
    /// Returns [`crate::UrelError::UnknownRelation`], a schema mismatch, or a
    /// descriptor-validation error; the staged state is unchanged on error.
    pub fn append(&mut self, relation: &str, tuple: Tuple, descriptor: WsDescriptor) -> Result<()> {
        self.db.validate_descriptor(&descriptor)?;
        let rel = self.db.relation_mut(relation)?;
        rel.try_insert(tuple, descriptor)?;
        self.touched.push(relation.to_string());
        self.appended_rows += 1;
        Ok(())
    }

    /// Retracts every row of `relation` whose tuple equals `tuple`,
    /// returning how many rows were removed. Retracting a tuple that is not
    /// present is a no-op (returns 0) and does not mark the relation
    /// touched.
    ///
    /// # Errors
    ///
    /// Returns [`crate::UrelError::UnknownRelation`] if the relation does not
    /// exist.
    pub fn retract(&mut self, relation: &str, tuple: &Tuple) -> Result<usize> {
        let rel = self.db.relation_mut(relation)?;
        let before = rel.len();
        if rel.iter().any(|(t, _)| t == tuple) {
            rel.rows_mut().retain(|(t, _)| t != tuple);
        }
        let removed = before - rel.len();
        if removed > 0 {
            self.touched.push(relation.to_string());
            self.retracted_rows += removed;
        }
        Ok(removed)
    }

    /// Finishes the delta, returning the mutated database and the report.
    pub fn finish(mut self) -> (ProbDb, DeltaReport) {
        self.touched.sort();
        self.touched.dedup();
        let report = DeltaReport {
            touched_relations: self.touched,
            added_variables: self.added_variables,
            appended_rows: self.appended_rows,
            retracted_rows: self.retracted_rows,
            world_stamp: self.db.world_table().stamp(),
        };
        (self.db, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::tests::ssn_db;
    use crate::value::Value;

    #[test]
    fn append_and_retract_report_touched_relations() {
        let base = ssn_db();
        let base_world_stamp = base.world_table().stamp();
        let base_rel_stamp = base.relation("R").unwrap().stamp();

        let mut delta = DeltaBuilder::new(&base);
        let v = delta.add_boolean("fred", 0.5).unwrap();
        let d = WsDescriptor::from_pairs(delta.world_table(), &[(v, 1)]).unwrap();
        delta
            .append("R", Tuple::new(vec![Value::Int(9), Value::str("Fred")]), d)
            .unwrap();
        let removed = delta
            .retract("R", &Tuple::new(vec![Value::Int(1), Value::str("John")]))
            .unwrap();
        assert_eq!(removed, 1);
        // Retracting a missing tuple is a counted no-op.
        assert_eq!(
            delta
                .retract("R", &Tuple::new(vec![Value::Int(99), Value::str("??")]))
                .unwrap(),
            0
        );

        let (db, report) = delta.finish();
        assert_eq!(report.touched_relations, vec!["R".to_string()]);
        assert!(report.touched("R"));
        assert!(!report.touched("S"));
        assert_eq!(report.added_variables, vec![v]);
        assert_eq!(report.appended_rows, 1);
        assert_eq!(report.retracted_rows, 1);
        assert_eq!(report.world_stamp, db.world_table().stamp());
        assert_ne!(report.world_stamp, base_world_stamp);
        assert_ne!(db.relation("R").unwrap().stamp(), base_rel_stamp);
        assert_eq!(db.relation("R").unwrap().len(), 4);
        assert!(db.validate().is_ok());

        // The base is untouched and existing variables kept their ids.
        assert_eq!(base.relation("R").unwrap().len(), 4);
        assert_eq!(base.relation("R").unwrap().stamp(), base_rel_stamp);
        assert!(db.world_table().extends(base.world_table()));
    }

    #[test]
    fn empty_delta_preserves_stamps() {
        let base = ssn_db();
        let (db, report) = DeltaBuilder::new(&base).finish();
        assert!(report.is_empty());
        assert_eq!(report.world_stamp, base.world_table().stamp());
        assert_eq!(
            db.relation("R").unwrap().stamp(),
            base.relation("R").unwrap().stamp()
        );
    }

    #[test]
    fn invalid_mutations_are_rejected_eagerly() {
        let base = ssn_db();
        let mut delta = DeltaBuilder::new(&base);
        // Unknown relation.
        assert!(delta
            .append("S", Tuple::new(vec![Value::Int(1)]), WsDescriptor::empty())
            .is_err());
        // Schema mismatch.
        assert!(delta
            .append("R", Tuple::new(vec![Value::Int(1)]), WsDescriptor::empty())
            .is_err());
        // Descriptor over an unknown variable.
        let mut bogus = WsDescriptor::empty();
        bogus
            .assign(uprob_wsd::VarId(99), uprob_wsd::ValueIndex(0))
            .unwrap();
        assert!(delta
            .append(
                "R",
                Tuple::new(vec![Value::Int(9), Value::str("Fred")]),
                bogus
            )
            .is_err());
        // Duplicate variable name.
        assert!(delta.add_boolean("j", 0.5).is_err());
        let (db, report) = delta.finish();
        assert!(report.is_empty());
        assert!(db.validate().is_ok());
    }
}
