//! Relation schemas: named, typed columns.

use std::fmt;

use crate::error::UrelError;
use crate::value::Value;
use crate::Result;

/// Type of a column.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
}

impl ColumnType {
    /// True if `value` is NULL or has this type.
    pub fn admits(&self, value: &Value) -> bool {
        matches!(
            (self, value),
            (_, Value::Null)
                | (ColumnType::Int, Value::Int(_))
                | (ColumnType::Float, Value::Float(_))
                | (ColumnType::Str, Value::Str(_))
                | (ColumnType::Bool, Value::Bool(_))
        )
    }
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ColumnType::Int => "INT",
            ColumnType::Float => "FLOAT",
            ColumnType::Str => "STR",
            ColumnType::Bool => "BOOL",
        };
        write!(f, "{s}")
    }
}

/// A named, typed column of a schema.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Column {
    /// Column name (unique within the schema, case-sensitive).
    pub name: String,
    /// Column type.
    pub column_type: ColumnType,
}

/// Schema of a U-relation: a relation name plus an ordered list of columns.
///
/// The ws-descriptor attached to every tuple is *not* part of the schema; it
/// plays the role of the `WSD` column of the paper and is carried alongside
/// the tuple by [`crate::URelation`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schema {
    name: String,
    columns: Vec<Column>,
}

impl Schema {
    /// Creates a schema from `(column name, type)` pairs.
    pub fn new(name: &str, columns: &[(&str, ColumnType)]) -> Schema {
        Schema {
            name: name.to_string(),
            columns: columns
                .iter()
                .map(|(n, t)| Column {
                    name: n.to_string(),
                    column_type: *t,
                })
                .collect(),
        }
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns a copy of this schema under a different relation name.
    pub fn renamed(&self, name: &str) -> Schema {
        Schema {
            name: name.to_string(),
            columns: self.columns.clone(),
        }
    }

    /// The ordered columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns (arity).
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of the column named `name`.
    ///
    /// # Errors
    ///
    /// Returns [`UrelError::UnknownColumn`] if the column does not exist.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| UrelError::UnknownColumn {
                relation: self.name.clone(),
                column: name.to_string(),
            })
    }

    /// True if a column with this name exists.
    pub fn has_column(&self, name: &str) -> bool {
        self.columns.iter().any(|c| c.name == name)
    }

    /// Builds the schema of the concatenation of `self` and `other`
    /// (used by joins and cross products). Columns of the right operand that
    /// clash with a left column are prefixed with the right relation name.
    pub fn concat(&self, other: &Schema, name: &str) -> Schema {
        let mut columns = self.columns.clone();
        for c in &other.columns {
            let column_name = if self.has_column(&c.name) {
                format!("{}.{}", other.name, c.name)
            } else {
                c.name.clone()
            };
            columns.push(Column {
                name: column_name,
                column_type: c.column_type,
            });
        }
        Schema {
            name: name.to_string(),
            columns,
        }
    }

    /// Builds the schema of a projection onto the named columns, in the
    /// given order.
    ///
    /// # Errors
    ///
    /// Returns [`UrelError::UnknownColumn`] if one of the names is missing.
    pub fn project(&self, columns: &[&str], name: &str) -> Result<Schema> {
        let mut projected = Vec::with_capacity(columns.len());
        for &c in columns {
            let idx = self.column_index(c)?;
            // uprob-lint: allow(panic-index) -- idx was just resolved by `column_index` on self
            projected.push(self.columns[idx].clone());
        }
        Ok(Schema {
            name: name.to_string(),
            columns: projected,
        })
    }

    /// Checks that two schemas are union-compatible (same arity and column
    /// types, names may differ).
    ///
    /// # Errors
    ///
    /// Returns [`UrelError::SchemaMismatch`] otherwise.
    pub fn check_union_compatible(&self, other: &Schema) -> Result<()> {
        let compatible = self.arity() == other.arity()
            && self
                .columns
                .iter()
                .zip(&other.columns)
                .all(|(a, b)| a.column_type == b.column_type);
        if compatible {
            Ok(())
        } else {
            Err(UrelError::SchemaMismatch {
                left: self.name.clone(),
                right: other.name.clone(),
            })
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", c.name, c.column_type)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new("R", &[("SSN", ColumnType::Int), ("NAME", ColumnType::Str)])
    }

    #[test]
    fn basic_accessors() {
        let s = schema();
        assert_eq!(s.name(), "R");
        assert_eq!(s.arity(), 2);
        assert_eq!(s.column_index("SSN").unwrap(), 0);
        assert_eq!(s.column_index("NAME").unwrap(), 1);
        assert!(s.has_column("SSN"));
        assert!(!s.has_column("ssn"));
        assert!(matches!(
            s.column_index("missing"),
            Err(UrelError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn column_types_admit_values() {
        assert!(ColumnType::Int.admits(&Value::Int(1)));
        assert!(ColumnType::Int.admits(&Value::Null));
        assert!(!ColumnType::Int.admits(&Value::str("x")));
        assert!(ColumnType::Str.admits(&Value::str("x")));
        assert!(ColumnType::Bool.admits(&Value::Bool(true)));
        assert!(ColumnType::Float.admits(&Value::Float(0.5)));
    }

    #[test]
    fn concat_prefixes_clashing_columns() {
        let s = schema();
        let t = Schema::new("S", &[("SSN", ColumnType::Int), ("CITY", ColumnType::Str)]);
        let joined = s.concat(&t, "RS");
        assert_eq!(joined.arity(), 4);
        assert_eq!(joined.columns()[2].name, "S.SSN");
        assert_eq!(joined.columns()[3].name, "CITY");
        assert_eq!(joined.name(), "RS");
    }

    #[test]
    fn project_reorders_columns() {
        let s = schema();
        let p = s.project(&["NAME", "SSN"], "P").unwrap();
        assert_eq!(p.columns()[0].name, "NAME");
        assert_eq!(p.columns()[1].name, "SSN");
        assert!(s.project(&["BAD"], "P").is_err());
    }

    #[test]
    fn union_compatibility() {
        let s = schema();
        let t = Schema::new("S", &[("A", ColumnType::Int), ("B", ColumnType::Str)]);
        assert!(s.check_union_compatible(&t).is_ok());
        let u = Schema::new("U", &[("A", ColumnType::Str), ("B", ColumnType::Str)]);
        assert!(matches!(
            s.check_union_compatible(&u),
            Err(UrelError::SchemaMismatch { .. })
        ));
    }

    #[test]
    fn renamed_and_display() {
        let s = schema().renamed("R2");
        assert_eq!(s.name(), "R2");
        assert_eq!(format!("{s}"), "R2(SSN: INT, NAME: STR)");
    }
}
