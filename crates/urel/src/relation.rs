//! U-relations: relations whose tuples carry world-set descriptors.

use std::collections::BTreeMap;
use std::fmt;

use uprob_wsd::{ValueIndex, WorldTable, WsDescriptor, WsSet};

use crate::error::UrelError;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::Result;

/// A U-relation over a schema `Σ` and a world table `W`: a set of tuples
/// over `Σ`, each associated with a ws-descriptor over `W` (Section 2).
///
/// A tuple is present in the possible world identified by a total valuation
/// `f` iff `f` extends the tuple's descriptor. The same tuple value may occur
/// in several rows with different descriptors; the tuple is then present in
/// the union of the corresponding world-sets.
#[derive(Clone, Debug)]
pub struct URelation {
    schema: Schema,
    rows: Vec<(Tuple, WsDescriptor)>,
    /// Content stamp: refreshed on every mutation, shared by (unmutated)
    /// clones. Equal stamps imply identical rows, which lets the delta
    /// conditioning path prove in O(1) that a memoized per-constraint
    /// violation ws-set is still valid for this relation.
    stamp: u64,
}

/// Source of fresh relation stamps (0 is reserved for "unbound").
static NEXT_RELATION_STAMP: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

fn fresh_relation_stamp() -> u64 {
    NEXT_RELATION_STAMP.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

/// Row equality only: the stamp is an identity witness, not content, so two
/// independently built relations with the same rows still compare equal
/// (query outputs are compared against hand-built expectations this way).
impl PartialEq for URelation {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.rows == other.rows
    }
}

impl URelation {
    /// Creates an empty U-relation with the given schema.
    pub fn new(schema: Schema) -> URelation {
        URelation {
            schema,
            rows: Vec::new(),
            stamp: fresh_relation_stamp(),
        }
    }

    /// The schema of this relation.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The content stamp of this relation: refreshed on every mutation and
    /// shared only with unmutated clones, so equal stamps imply identical
    /// rows. Used by violation-memo delta consumers to detect unchanged
    /// relations without comparing rows.
    #[inline]
    pub fn stamp(&self) -> u64 {
        self.stamp
    }

    /// Number of rows (tuple/descriptor pairs).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row without validation (arity/type checks are performed by
    /// [`URelation::try_insert`] or [`crate::ProbDb::insert_relation`]).
    pub fn push(&mut self, tuple: Tuple, descriptor: WsDescriptor) {
        self.rows.push((tuple, descriptor));
        self.stamp = fresh_relation_stamp();
    }

    /// Appends a row, validating it against the schema.
    ///
    /// # Errors
    ///
    /// Returns [`UrelError::TupleSchemaMismatch`] if the arity or a value
    /// type does not match the schema.
    pub fn try_insert(&mut self, tuple: Tuple, descriptor: WsDescriptor) -> Result<()> {
        self.validate_tuple(&tuple)?;
        self.rows.push((tuple, descriptor));
        self.stamp = fresh_relation_stamp();
        Ok(())
    }

    /// Checks a tuple against the schema.
    pub fn validate_tuple(&self, tuple: &Tuple) -> Result<()> {
        if tuple.arity() != self.schema.arity() {
            return Err(UrelError::TupleSchemaMismatch {
                relation: self.schema.name().to_string(),
                detail: format!(
                    "arity {} does not match schema arity {}",
                    tuple.arity(),
                    self.schema.arity()
                ),
            });
        }
        for (column, value) in self.schema.columns().iter().zip(tuple.values()) {
            if !column.column_type.admits(value) {
                return Err(UrelError::TupleSchemaMismatch {
                    relation: self.schema.name().to_string(),
                    detail: format!(
                        "value {value} is not admissible for column {} of type {}",
                        column.name, column.column_type
                    ),
                });
            }
        }
        Ok(())
    }

    /// Iterates over `(tuple, descriptor)` rows.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, &WsDescriptor)> {
        self.rows.iter().map(|(t, d)| (t, d))
    }

    /// Mutable access to the rows (used by conditioning to rewrite
    /// descriptors in place). Conservatively refreshes the content stamp:
    /// callers may mutate through the returned reference, so the old stamp
    /// can no longer witness identical rows.
    pub fn rows_mut(&mut self) -> &mut Vec<(Tuple, WsDescriptor)> {
        self.stamp = fresh_relation_stamp();
        &mut self.rows
    }

    /// Read-only access to the rows.
    pub fn rows(&self) -> &[(Tuple, WsDescriptor)] {
        &self.rows
    }

    /// The ws-set consisting of the descriptors of *all* rows.
    ///
    /// For the answer of a Boolean query this is exactly the ws-set whose
    /// probability is the query confidence (Section 7: "the projection of a
    /// query result to a nullary relation causes all the ws-sets to be
    /// unioned").
    pub fn answer_ws_set(&self) -> WsSet {
        self.rows.iter().map(|(_, d)| d.clone()).collect()
    }

    /// The ws-set of the worlds in which `tuple` is present: the descriptors
    /// of all rows whose tuple equals `tuple`.
    pub fn tuple_ws_set(&self, tuple: &Tuple) -> WsSet {
        self.rows
            .iter()
            .filter(|(t, _)| t == tuple)
            .map(|(_, d)| d.clone())
            .collect()
    }

    /// Groups rows by tuple value, returning each distinct tuple with the
    /// ws-set of the worlds in which it appears.
    pub fn distinct_tuples(&self) -> Vec<(Tuple, WsSet)> {
        let mut groups: BTreeMap<Tuple, WsSet> = BTreeMap::new();
        for (t, d) in &self.rows {
            groups.entry(t.clone()).or_default().push(d.clone());
        }
        groups.into_iter().collect()
    }

    /// Materialises the instance of this relation in the possible world
    /// identified by the total valuation `world`: the set of tuples whose
    /// descriptor is extended by `world` (duplicates removed).
    pub fn instantiate(&self, world: &[ValueIndex]) -> Vec<Tuple> {
        let mut tuples: Vec<Tuple> = self
            .rows
            .iter()
            .filter(|(_, d)| d.matches_world(world))
            .map(|(t, _)| t.clone())
            .collect();
        tuples.sort();
        tuples.dedup();
        tuples
    }

    /// Renders the relation with the descriptors shown as in Figure 2 of the
    /// paper.
    pub fn display<'a>(&'a self, table: &'a WorldTable) -> impl fmt::Display + 'a {
        URelationDisplay {
            relation: self,
            table,
        }
    }
}

struct URelationDisplay<'a> {
    relation: &'a URelation,
    table: &'a WorldTable,
}

impl fmt::Display for URelationDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.relation.schema)?;
        for (tuple, descriptor) in self.relation.iter() {
            writeln!(f, "  {}  {}", descriptor.display(self.table), tuple)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;
    use crate::value::Value;
    use uprob_wsd::WorldTable;

    fn ssn_relation() -> (WorldTable, URelation) {
        let mut w = WorldTable::new();
        let j = w.add_variable("j", &[(1, 0.2), (7, 0.8)]).unwrap();
        let b = w.add_variable("b", &[(4, 0.3), (7, 0.7)]).unwrap();
        let schema = Schema::new("R", &[("SSN", ColumnType::Int), ("NAME", ColumnType::Str)]);
        let mut r = URelation::new(schema);
        r.push(
            Tuple::new(vec![Value::Int(1), Value::str("John")]),
            WsDescriptor::from_pairs(&w, &[(j, 1)]).unwrap(),
        );
        r.push(
            Tuple::new(vec![Value::Int(7), Value::str("John")]),
            WsDescriptor::from_pairs(&w, &[(j, 7)]).unwrap(),
        );
        r.push(
            Tuple::new(vec![Value::Int(4), Value::str("Bill")]),
            WsDescriptor::from_pairs(&w, &[(b, 4)]).unwrap(),
        );
        r.push(
            Tuple::new(vec![Value::Int(7), Value::str("Bill")]),
            WsDescriptor::from_pairs(&w, &[(b, 7)]).unwrap(),
        );
        (w, r)
    }

    #[test]
    fn push_and_iterate() {
        let (_, r) = ssn_relation();
        assert_eq!(r.len(), 4);
        assert!(!r.is_empty());
        assert_eq!(r.iter().count(), 4);
        assert_eq!(r.answer_ws_set().len(), 4);
    }

    #[test]
    fn try_insert_validates_schema() {
        let (_, mut r) = ssn_relation();
        let ok = Tuple::new(vec![Value::Int(9), Value::str("Fred")]);
        assert!(r.try_insert(ok, WsDescriptor::empty()).is_ok());
        let wrong_arity = Tuple::new(vec![Value::Int(9)]);
        assert!(matches!(
            r.try_insert(wrong_arity, WsDescriptor::empty()),
            Err(UrelError::TupleSchemaMismatch { .. })
        ));
        let wrong_type = Tuple::new(vec![Value::str("9"), Value::str("Fred")]);
        assert!(r.try_insert(wrong_type, WsDescriptor::empty()).is_err());
        let with_null = Tuple::new(vec![Value::Null, Value::str("Fred")]);
        assert!(r.try_insert(with_null, WsDescriptor::empty()).is_ok());
    }

    #[test]
    fn instantiate_reproduces_figure_1_worlds() {
        let (w, r) = ssn_relation();
        // World {j -> 1, b -> 4} is R1 of Figure 1: {(1, John), (4, Bill)}.
        let world = vec![ValueIndex(0), ValueIndex(0)];
        let tuples = r.instantiate(&world);
        assert_eq!(tuples.len(), 2);
        assert!(tuples.contains(&Tuple::new(vec![Value::Int(1), Value::str("John")])));
        assert!(tuples.contains(&Tuple::new(vec![Value::Int(4), Value::str("Bill")])));
        // World {j -> 7, b -> 7} is R4: {(7, John), (7, Bill)}.
        let world4 = vec![ValueIndex(1), ValueIndex(1)];
        let tuples4 = r.instantiate(&world4);
        assert_eq!(tuples4.len(), 2);
        assert!(tuples4.contains(&Tuple::new(vec![Value::Int(7), Value::str("John")])));
        let _ = w;
    }

    #[test]
    fn tuple_ws_set_and_distinct_tuples() {
        let (w, mut r) = ssn_relation();
        // Add a second derivation of (7, Bill), e.g. from another source.
        let extra = WsDescriptor::empty();
        r.push(Tuple::new(vec![Value::Int(7), Value::str("Bill")]), extra);
        let t = Tuple::new(vec![Value::Int(7), Value::str("Bill")]);
        let ws = r.tuple_ws_set(&t);
        assert_eq!(ws.len(), 2);
        let distinct = r.distinct_tuples();
        assert_eq!(distinct.len(), 4);
        let entry = distinct.iter().find(|(tuple, _)| tuple == &t).unwrap();
        assert_eq!(entry.1.len(), 2);
        let _ = w;
    }

    #[test]
    fn stamps_track_row_identity_but_not_equality() {
        let (_, r) = ssn_relation();
        let clone = r.clone();
        assert_eq!(r.stamp(), clone.stamp());
        let mut mutated = r.clone();
        mutated.push(
            Tuple::new(vec![Value::Int(9), Value::str("Fred")]),
            WsDescriptor::empty(),
        );
        assert_ne!(r.stamp(), mutated.stamp());
        // rows_mut conservatively refreshes even without an actual write.
        let mut touched = r.clone();
        let _ = touched.rows_mut();
        assert_ne!(r.stamp(), touched.stamp());
        // Equality ignores the stamp: independently built relations with the
        // same rows compare equal.
        let (_, twin) = ssn_relation();
        assert_ne!(r.stamp(), twin.stamp());
        assert_eq!(r, twin);
    }

    #[test]
    fn display_shows_descriptors_and_tuples() {
        let (w, r) = ssn_relation();
        let text = format!("{}", r.display(&w));
        assert!(text.contains("{j -> 1}  (1, John)"));
        assert!(text.contains("{b -> 7}  (7, Bill)"));
    }
}
