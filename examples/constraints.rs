//! Cross-relation constraints and single-pass conditioning.
//!
//! A small order-management database with uncertain ingestion: customers
//! and orders both carry existence probabilities, and some rows are
//! corrupt — an order referencing a customer that was never confirmed, a
//! duplicate customer SSN, an order total that fails a sanity check.
//! Cleaning means conditioning on the conjunction of four constraints:
//!
//! * a **key**: customer SSNs are unique,
//! * an **inclusion dependency** (foreign key): every order references an
//!   existing customer,
//! * a **row filter**: order totals are positive,
//! * a **denial constraint**: no order above the credit limit co-exists
//!   with a customer flagged as `blocked`.
//!
//! [`assert_all`] compiles every violation query through the optimized
//! pipelined executor, unions the violation world-sets, complements once,
//! and conditions the database in a **single pass** — this example
//! cross-checks it against the sequential [`assert_constraint`] fold and
//! then answers posterior queries, both exactly and through the hybrid
//! sampling engine.
//!
//! Run with `cargo run --example constraints`.

use uprob::prelude::*;

fn main() {
    // ------------------------------------------------------------- //
    // 1. The prior database: uncertain customers and orders.         //
    // ------------------------------------------------------------- //
    let mut db = ProbDb::new();
    let customer_schema = Schema::new(
        "customer",
        &[
            ("CID", ColumnType::Int),
            ("SSN", ColumnType::Int),
            ("STATUS", ColumnType::Str),
        ],
    );
    let order_schema = Schema::new(
        "orders",
        &[
            ("OID", ColumnType::Int),
            ("CID", ColumnType::Int),
            ("TOTAL", ColumnType::Int),
        ],
    );
    let mut customer = db.create_relation(customer_schema).expect("fresh relation");
    let mut orders = db.create_relation(order_schema).expect("fresh relation");
    // Customers: (CID, SSN, STATUS, probability). Customers 1 and 2 share
    // an SSN reading — the key constraint will have to arbitrate.
    let customers = [
        (1i64, 500i64, "ok", 0.9),
        (2, 500, "ok", 0.6),
        (3, 501, "blocked", 0.8),
        (4, 502, "ok", 0.7),
    ];
    for &(cid, ssn, status, p) in &customers {
        let var = db
            .world_table_mut()
            .add_boolean(&format!("c{cid}"), p)
            .expect("fresh variable");
        customer.push(
            Tuple::new(vec![Value::Int(cid), Value::Int(ssn), Value::str(status)]),
            WsDescriptor::from_pairs(db.world_table(), &[(var, 1)]).expect("boolean"),
        );
    }
    // Orders: (OID, CID, TOTAL, probability). Order 102 references the
    // never-ingested customer 9; order 103 has a negative total; order 104
    // is a big-ticket order by the blocked customer 3.
    let order_rows = [
        (101i64, 1i64, 250i64, 0.9),
        (102, 9, 120, 0.5),
        (103, 4, -30, 0.4),
        (104, 3, 9_000, 0.7),
        (105, 2, 80, 0.8),
    ];
    for &(oid, cid, total, p) in &order_rows {
        let var = db
            .world_table_mut()
            .add_boolean(&format!("o{oid}"), p)
            .expect("fresh variable");
        orders.push(
            Tuple::new(vec![Value::Int(oid), Value::Int(cid), Value::Int(total)]),
            WsDescriptor::from_pairs(db.world_table(), &[(var, 1)]).expect("boolean"),
        );
    }
    db.insert_relation(customer).expect("valid relation");
    db.insert_relation(orders).expect("valid relation");

    // ------------------------------------------------------------- //
    // 2. The constraint set.                                         //
    // ------------------------------------------------------------- //
    let constraints = vec![
        Constraint::key("customer", &["SSN"]),
        Constraint::inclusion_dependency("orders", &["CID"], "customer", &["CID"]),
        Constraint::row_filter(
            "orders",
            Predicate::cmp(Expr::col("TOTAL"), Comparison::Gt, Expr::val(0i64)),
        ),
        Constraint::denial(
            "no-blocked-big-ticket",
            &[("orders", "o"), ("customer", "c")],
            Predicate::cols_eq("CID", "c.CID")
                .and(Predicate::col_eq("STATUS", "blocked"))
                .and(Predicate::cmp(
                    Expr::col("TOTAL"),
                    Comparison::Gt,
                    Expr::val(1_000i64),
                )),
        ),
    ];
    println!("constraints:");
    for constraint in &constraints {
        let violations = constraint
            .violation_ws_set(&db)
            .expect("constraints validate");
        println!(
            "  {:<40} P(violated) = {:.4}",
            constraint.describe(),
            violations.probability_by_enumeration(db.world_table())
        );
    }

    // ------------------------------------------------------------- //
    // 3. Single-pass assert_all vs the sequential fold.              //
    // ------------------------------------------------------------- //
    let options = ConditioningOptions::default();
    let batch = assert_all(&db, &constraints, &options).expect("satisfiable");
    println!(
        "\nassert_all: P(all constraints hold) = {:.6} ({} decomposition nodes, one pass)",
        batch.confidence,
        batch.stats.total_nodes()
    );
    let mut current = db.clone();
    let mut product = 1.0;
    let mut sequential_nodes = 0;
    for constraint in &constraints {
        let step = assert_constraint(&current, constraint, &options).expect("satisfiable");
        product *= step.confidence;
        sequential_nodes += step.stats.total_nodes();
        current = step.db;
    }
    println!(
        "sequential:  P = {:.6} ({sequential_nodes} nodes across {} passes)",
        product,
        constraints.len()
    );
    assert!((batch.confidence - product).abs() < 1e-9);

    // ------------------------------------------------------------- //
    // 4. Posterior queries on the cleaned database.                  //
    // ------------------------------------------------------------- //
    let surviving_orders = batch
        .db
        .query(&Plan::scan("orders").project(&["OID"]))
        .expect("valid plan");
    let answers = tuple_confidences(
        &surviving_orders,
        batch.db.world_table(),
        &DecompositionOptions::default(),
    )
    .expect("exact confidences");
    println!("\nposterior order survival:");
    for (tuple, p) in &answers {
        println!("  order {:?}: P = {:.4}", tuple.get(0).unwrap(), p);
    }

    // The same assertion through the hybrid engine: with a starved budget
    // the posterior stays virtual and queries run as conditioned
    // estimates on the *prior* database.
    let starved = assert_all_with_strategy(
        &db,
        &constraints,
        &options,
        &ConfidenceStrategy::hybrid(4, 0.1, 0.05),
    )
    .expect("satisfiable");
    if let Assertion::Estimated(virtual_posterior) = starved {
        println!(
            "\nhybrid (budget 4): virtual posterior, estimated P(C) = {:.4}",
            virtual_posterior.confidence.probability
        );
        // Queries against a virtual posterior run on the *prior* database.
        let prior_orders = db
            .query(&Plan::scan("orders").project(&["OID"]))
            .expect("valid plan");
        let posterior = virtual_posterior
            .tuple_confidences(&prior_orders, db.world_table(), Some(2))
            .expect("conditioned estimates");
        let (tuple, report) = &posterior[0];
        println!(
            "  e.g. order {:?}: estimated posterior P = {:.4}",
            tuple.get(0).unwrap(),
            report.probability
        );
    } else {
        println!("\nhybrid (budget 4): materialized after all");
    }
}
