//! Logical query plans end to end: build the unoptimized plan of a query,
//! watch the optimizer rewrite it, execute it through the pipelined
//! hash-join executor, and run `conf()` over the planned answer —
//! including the planned-vs-eager wall-clock gap on a TPC-H-shaped join.
//!
//! ```text
//! cargo run --release --example query_plans
//! ```

use std::time::Instant;

use uprob::datagen::{q1_plan, TpchConfig, TpchDatabase};
use uprob::prelude::*;

fn main() {
    // ── The SSN database of Figure 2 ────────────────────────────────────
    let mut db = ProbDb::new();
    let j = db
        .world_table_mut()
        .add_variable("j", &[(1, 0.2), (7, 0.8)])
        .unwrap();
    let b = db
        .world_table_mut()
        .add_variable("b", &[(4, 0.3), (7, 0.7)])
        .unwrap();
    let schema = Schema::new("R", &[("SSN", ColumnType::Int), ("NAME", ColumnType::Str)]);
    let mut r = db.create_relation(schema).unwrap();
    {
        let w = db.world_table();
        r.push(
            Tuple::new(vec![Value::Int(1), Value::str("John")]),
            WsDescriptor::from_pairs(w, &[(j, 1)]).unwrap(),
        );
        r.push(
            Tuple::new(vec![Value::Int(7), Value::str("John")]),
            WsDescriptor::from_pairs(w, &[(j, 7)]).unwrap(),
        );
        r.push(
            Tuple::new(vec![Value::Int(4), Value::str("Bill")]),
            WsDescriptor::from_pairs(w, &[(b, 4)]).unwrap(),
        );
        r.push(
            Tuple::new(vec![Value::Int(7), Value::str("Bill")]),
            WsDescriptor::from_pairs(w, &[(b, 7)]).unwrap(),
        );
    }
    db.insert_relation(r).unwrap();

    // Example 2.3 as a plan, written the naive way: a selection over a
    // cross product of the relation with a renamed copy of itself.
    let violation = Plan::scan("R")
        .product(Plan::scan("R").rename("R2"))
        .select(Predicate::cols_eq("SSN", "R2.SSN").and(Predicate::cmp(
            Expr::col("NAME"),
            Comparison::Ne,
            Expr::col("R2.NAME"),
        )))
        .project(&[]);
    println!("unoptimized FD-violation plan:\n{violation}");
    let optimized = optimize_plan(&violation, &db).unwrap();
    println!("optimized (select-product became an equi-join):\n{optimized}");

    // `ProbDb::query` = optimize + pipelined execution; `conf()` of the
    // Boolean answer is the violation probability of Example 2.3.
    let p = planned_boolean_confidence(&db, &violation, &DecompositionOptions::default()).unwrap();
    println!("conf(FD violated) = {p:.2}   (paper: 0.56; assert[SSN→NAME] keeps 0.44)\n");

    // Per-tuple conf() over a planned query: Bill's SSN marginals.
    let bills = Plan::scan("R")
        .select(Predicate::col_eq("NAME", "Bill"))
        .project(&["SSN"]);
    let answers =
        planned_answer_confidences(&db, &bills, &DecompositionOptions::default(), None).unwrap();
    for (tuple, confidence) in &answers.tuples {
        println!(
            "conf(Bill has SSN {}) = {confidence:.2}",
            tuple.get(0).unwrap()
        );
    }

    // ── Planned vs. eager on a TPC-H-shaped join ────────────────────────
    // The eager reference materialises every intermediate relation — on
    // the unoptimized Q1 product chain that is |customer|·|orders| rows
    // and then |customer|·|orders|·|lineitem| pairs, so the comparison
    // runs on a deliberately tiny instance. The planned path streams
    // through pushed-down selections and hash joins and shrugs at it.
    let data = TpchDatabase::generate(TpchConfig::scale(0.01).with_row_scale(0.005).with_seed(7));
    let q1 = q1_plan();
    println!("\nTPC-H Q1 as an unoptimized product chain:\n{q1}");
    println!("optimized:\n{}", optimize_plan(&q1, &data.db).unwrap());

    let start = Instant::now();
    let planned = data.db.query(&q1).unwrap();
    let planned_elapsed = start.elapsed();
    println!(
        "optimize + pipelined hash joins: {} answer rows in {:.2?}",
        planned.len(),
        planned_elapsed
    );
    let start = Instant::now();
    let eager = data.db.query_eager(&q1).unwrap();
    let eager_elapsed = start.elapsed();
    println!(
        "eager nested-loop reference:     {} answer rows in {:.2?}  ({:.0}x slower)",
        eager.len(),
        eager_elapsed,
        eager_elapsed.as_secs_f64() / planned_elapsed.as_secs_f64().max(1e-9)
    );
    assert_eq!(planned.len(), eager.len());

    // At a 10x larger instance the planned path is still instant; the
    // per-tuple conf() batch over the planned answer closes the loop.
    let data = TpchDatabase::generate(TpchConfig::scale(0.01).with_row_scale(0.05).with_seed(7));
    let start = Instant::now();
    let confidences =
        planned_answer_confidences(&data.db, &q1, &DecompositionOptions::default(), Some(1))
            .unwrap();
    println!(
        "10x larger instance: plan + conf() over {} answer tuples in {:.2?} \
         (boolean conf {:.4})",
        confidences.tuples.len(),
        start.elapsed(),
        confidences.boolean
    );
}
