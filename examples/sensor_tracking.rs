//! Tracking moving objects with uncertain sensor readings.
//!
//! A set of RFID readers observes tagged objects; each observation is
//! uncertain about the zone the object is in (the classic probabilistic
//! database motivation of tracking moving objects and sensor data). New
//! evidence arrives — a security sweep establishes that no two objects share
//! a zone, and object 0 is definitely not in the loading dock — and the
//! database is *conditioned* on it. The example inspects the ws-tree built
//! for the evidence, compares the prior and posterior zone distributions and
//! shows that the posterior world weights sum to one.
//!
//! The second half turns the motivation into a *stream*: a fixed fleet of
//! uncertain sensors receives batches of uncertain readings through the
//! snapshot-isolated [`ProbDbService`] — `ingest()` accumulates deltas
//! without publishing (readers keep a bounded-stale snapshot), and
//! `assert_all_delta()` re-conditions incrementally and publishes a
//! posterior whose decomposition cache *inherits* the warm entries over
//! the never-mutated fleet relation, so the standing zone-coverage query
//! keeps answering from cache across publishes.
//!
//! Run with `cargo run --example sensor_tracking`.

use uprob::datagen::{SensorConfig, SensorWorkload};
use uprob::prelude::*;

const ZONES: [&str; 4] = ["dock", "aisle", "office", "yard"];

fn main() {
    // ----------------------------------------------------------------- //
    // 1. The prior: each object's zone is a distribution over readings.  //
    // ----------------------------------------------------------------- //
    let mut db = ProbDb::new();
    let readings: [&[(i64, f64)]; 3] = [
        // Object 0 was seen near the dock but the reading is weak.
        &[(0, 0.5), (1, 0.3), (3, 0.2)],
        // Object 1 is almost certainly in the aisle.
        &[(1, 0.7), (2, 0.2), (0, 0.1)],
        // Object 2 oscillates between office and yard.
        &[(2, 0.45), (3, 0.45), (1, 0.1)],
    ];
    let mut vars = Vec::new();
    for (object, distribution) in readings.iter().enumerate() {
        let var = db
            .world_table_mut()
            .add_variable(&format!("loc{object}"), distribution)
            .expect("valid distribution");
        vars.push(var);
    }
    let schema = Schema::new(
        "location",
        &[("OBJECT", ColumnType::Int), ("ZONE", ColumnType::Str)],
    );
    let mut relation = db.create_relation(schema).expect("fresh relation");
    for (object, distribution) in readings.iter().enumerate() {
        for &(zone, _) in distribution.iter() {
            relation.push(
                Tuple::new(vec![
                    Value::Int(object as i64),
                    Value::str(ZONES[zone as usize]),
                ]),
                WsDescriptor::from_pairs(db.world_table(), &[(vars[object], zone)])
                    .expect("valid descriptor"),
            );
        }
    }
    db.insert_relation(relation).expect("relation is valid");

    println!("== Prior zone distributions ==");
    print_zone_distributions(&db);

    // ----------------------------------------------------------------- //
    // 2. Evidence as a ws-set, and its ws-tree decomposition.            //
    // ----------------------------------------------------------------- //
    // Evidence A: no two objects share a zone (a key constraint on ZONE).
    let exclusive = Constraint::key("location", &["ZONE"]);
    // Evidence B: object 0 is not in the dock.
    let not_dock = Constraint::row_filter(
        "location",
        Predicate::col_eq("OBJECT", 0i64).not().or(Predicate::cmp(
            Expr::col("ZONE"),
            Comparison::Ne,
            Expr::val("dock"),
        )),
    );
    let evidence = exclusive
        .satisfying_ws_set(&db)
        .expect("well-formed constraint");
    println!("\n== Evidence: no two objects share a zone ==");
    println!(
        "satisfying ws-set: {} descriptors over {} variables",
        evidence.len(),
        evidence.variables().len()
    );
    let (tree, stats) = build_tree(
        &evidence,
        db.world_table(),
        &DecompositionOptions::indve_minlog(),
    )
    .expect("decomposition succeeds");
    println!(
        "ws-tree: {} nodes ({} ⊕, {} ⊗), height {}",
        tree.shape().total_nodes(),
        stats.choice_nodes,
        stats.independent_nodes,
        tree.shape().height
    );
    println!("{}", tree.display(db.world_table()));

    // ----------------------------------------------------------------- //
    // 3. Condition on both pieces of evidence.                           //
    // ----------------------------------------------------------------- //
    let options = ConditioningOptions::default();
    let step1 = assert_constraint(&db, &exclusive, &options).expect("evidence is satisfiable");
    let posterior =
        assert_constraint(&step1.db, &not_dock, &options).expect("evidence is satisfiable");
    println!("== Conditioning ==");
    println!(
        "P(no shared zone)                  = {:.4}",
        step1.confidence
    );
    println!(
        "P(object 0 not in dock | above)    = {:.4}",
        posterior.confidence
    );

    println!("\n== Posterior zone distributions ==");
    print_zone_distributions(&posterior.db);

    // The posterior is a proper probability distribution.
    let total: f64 = posterior
        .db
        .world_table()
        .enumerate_worlds()
        .map(|(_, p)| p)
        .sum();
    println!("\nposterior world weights sum to {total:.6}");
    assert!((total - 1.0).abs() < 1e-9);

    // Certain facts after conditioning.
    let zones = algebra::project(
        posterior.db.relation("location").expect("location exists"),
        &["OBJECT", "ZONE"],
        "Z",
    )
    .expect("valid projection");
    let certain = certain_tuples(
        &zones,
        posterior.db.world_table(),
        &DecompositionOptions::default(),
    )
    .expect("confidence computation succeeds");
    println!("\n== Facts that became certain ==");
    if certain.is_empty() {
        println!("  (none)");
    }
    for t in &certain {
        println!(
            "  object {} is in the {}",
            t.get(0).expect("col"),
            t.get(1).expect("col")
        );
    }

    // ----------------------------------------------------------------- //
    // 4. Continuous ingest through the serving layer.                    //
    // ----------------------------------------------------------------- //
    // A fleet of uncertain sensors streams uncertain readings. Ingest
    // batches accumulate on the writer's prior line without publishing;
    // every second batch a delta conditioning pass re-checks the
    // constraints (reusing memoized violation ws-sets for relations that
    // did not change) and publishes a posterior snapshot that inherits
    // the warm decomposition-cache entries over the never-mutated
    // `sensors` relation.
    println!("\n== Continuous ingest through the serving layer ==");
    let workload = SensorWorkload::generate(&SensorConfig::default());
    let service = ProbDbService::new(workload.db.clone());
    // The standing query: which zones have an operational sensor.
    let coverage = Plan::scan("sensors").project(&["ZONE"]);
    let prior_answer = service.conf(&coverage).expect("coverage decomposes");
    println!(
        "P(some sensor operational) = {:.4} over {} zones",
        prior_answer.boolean,
        prior_answer.tuples.len()
    );
    let mut next_reading = 4usize; // after the seed readings
    for (index, batch) in workload.batches.iter().enumerate() {
        let report = service
            .ingest(|delta| {
                for reading in batch {
                    let var =
                        delta.add_boolean(&format!("r{next_reading}"), reading.reliability)?;
                    next_reading += 1;
                    let descriptor = WsDescriptor::from_pairs(delta.world_table(), &[(var, 1)])?;
                    delta.append("readings", reading.tuple(), descriptor)?;
                }
                Ok(())
            })
            .expect("the generated batch applies cleanly");
        println!(
            "batch {}: ingested {} readings (stale until publish: {})",
            index + 1,
            batch.len(),
            report.touched("readings"),
        );
        if (index + 1) % 2 == 0 {
            let outcome = service
                .assert_all_delta(&workload.constraints)
                .expect("the stream satisfies the constraints");
            let answer = service.conf(&coverage).expect("coverage decomposes");
            let cache = service.snapshot().cache_stats();
            println!(
                "  publish: P(constraints) = {:.4}, reused violation sets = {}, \
                 inherited cache entries = {} (hits {}), coverage = {:.4}",
                outcome.confidence,
                outcome.reused_violations,
                cache.inherited_entries,
                cache.inherited_hits,
                answer.boolean,
            );
        }
    }
    let final_cache = service.snapshot().cache_stats();
    assert!(
        final_cache.inherited_hits > 0,
        "the standing query must keep hitting inherited entries"
    );
    println!(
        "final snapshot: {} cache entries, {} inherited, {} inherited hits",
        final_cache.entries, final_cache.inherited_entries, final_cache.inherited_hits
    );
}

/// Prints, for every object, the confidence of each zone.
fn print_zone_distributions(db: &ProbDb) {
    let relation = db.relation("location").expect("location exists");
    for object in 0..3i64 {
        let rows = algebra::select(relation, &Predicate::col_eq("OBJECT", object), "one")
            .expect("valid selection");
        let zones = algebra::project(&rows, &["ZONE"], "zones").expect("valid projection");
        let mut confidences =
            tuple_confidences(&zones, db.world_table(), &DecompositionOptions::default())
                .expect("confidence computation succeeds");
        confidences.sort_by(|a, b| b.1.total_cmp(&a.1));
        let rendered: Vec<String> = confidences
            .iter()
            .map(|(t, p)| format!("{}: {:.3}", t.get(0).expect("one column"), p))
            .collect();
        println!("  object {object}: {}", rendered.join(", "));
    }
}
