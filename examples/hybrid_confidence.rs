//! The hybrid exact→approximate confidence engine on the "hard instance"
//! workload: an answer whose tuples straddle the feasibility wall.
//!
//! ```text
//! cargo run --release --example hybrid_confidence
//! ```
//!
//! The example builds two #P-hard datagen instances — one in the feasible
//! region (12 variables), one in the hard region (100 variables, 1500
//! descriptors) — and runs `conf()` through the three strategies of the
//! engine. On the feasible instance `Hybrid` reproduces `Exact` bit for
//! bit; on the hard one `Exact` aborts with `BudgetExceeded` while
//! `Hybrid` transparently degrades to Karp–Luby sampling under the Dagum
//! et al. optimal stopping rule, reporting the (ε, δ) it guarantees.

use std::time::Instant;

use uprob::datagen::{HardInstance, HardInstanceConfig};
use uprob::prelude::*;

fn report_line(label: &str, report: &ConfidenceReport, elapsed: std::time::Duration) {
    let path = match report.path {
        ResolvedPath::Exact => "exact path".to_string(),
        ResolvedPath::Sampled { fell_back: true } => "sampling (fallback)".to_string(),
        ResolvedPath::Sampled { fell_back: false } => "sampling".to_string(),
    };
    let detail = match &report.sampling {
        Some(s) => format!(
            "{} iterations, guarantees ({}, {})",
            s.iterations, s.epsilon, s.delta
        ),
        None => format!("{} decomposition nodes", report.stats.total_nodes()),
    };
    println!(
        "  {label:<12} p = {:<22} via {path:<20} [{detail}] in {elapsed:?}",
        report.probability
    );
}

fn main() {
    const BUDGET: u64 = 20_000;
    let strategies = [
        ConfidenceStrategy::Exact,
        ConfidenceStrategy::hybrid(BUDGET, 0.05, 0.01),
        ConfidenceStrategy::approximate(0.05, 0.01),
    ];
    let feasible = HardInstance::generate(HardInstanceConfig {
        num_variables: 12,
        alternatives: 4,
        descriptor_length: 4,
        num_descriptors: 24,
        seed: 100,
    });
    let hard = HardInstance::generate(HardInstanceConfig {
        num_variables: 100,
        alternatives: 4,
        descriptor_length: 4,
        num_descriptors: 1_500,
        seed: 11,
    });

    for (name, instance) in [
        ("feasible (n=12, w=24)", &feasible),
        ("hard (n=100, w=1500)", &hard),
    ] {
        println!("{name}:");
        for strategy in &strategies {
            // The exact strategy runs under the same budget, playing the
            // role of the paper's per-run timeout.
            let options = match strategy {
                ConfidenceStrategy::Exact => {
                    DecompositionOptions::indve_minlog().with_budget(BUDGET)
                }
                _ => DecompositionOptions::indve_minlog(),
            };
            let start = Instant::now();
            match estimate_confidence(
                &instance.ws_set,
                &instance.world_table,
                &options,
                strategy,
                None,
            ) {
                Ok(report) => report_line(strategy.name(), &report, start.elapsed()),
                Err(e) => println!(
                    "  {:<12} aborted: {e} (in {:?})",
                    strategy.name(),
                    start.elapsed()
                ),
            }
        }
    }

    // The same wall, seen from the batch conf() path: the hard answer
    // grouped into four tuples completes through the hybrid batch even
    // though every tuple's exact attempt aborts.
    let schema = Schema::new("H", &[("ID", ColumnType::Int)]);
    let mut relation = URelation::new(schema);
    for (i, d) in hard.ws_set.iter().enumerate() {
        relation.push(Tuple::new(vec![Value::Int((i % 4) as i64)]), d.clone());
    }
    let start = Instant::now();
    let batch = answer_confidences_with_strategy(
        &relation,
        &hard.world_table,
        &DecompositionOptions::indve_minlog(),
        &ConfidenceStrategy::hybrid(BUDGET, 0.1, 0.05),
        None,
    )
    .expect("the hybrid batch completes where exact aborts");
    println!(
        "hybrid batch over the hard answer: {} tuples ({} sampled, {} total iterations) in {:?}",
        batch.tuples.len(),
        batch.sampled_tuples(),
        batch.sampling_iterations(),
        start.elapsed()
    );
    for (tuple, report) in &batch.tuples {
        println!("  tuple {tuple:?}: conf = {}", report.probability);
    }
    assert_eq!(batch.sampled_tuples(), batch.tuples.len());
}
