//! Confidence computation on probabilistic TPC-H (the Figure 10 workload).
//!
//! Generates a tuple-independent probabilistic TPC-H database, evaluates the
//! paper's Boolean queries Q1 (customer ⋈ orders ⋈ lineitem) and Q2
//! (a selection on lineitem), and computes the confidence of each answer
//! ws-set with every algorithm in the library: INDVE (minlog and minmax),
//! VE, ws-descriptor elimination, and the Karp–Luby approximation.
//!
//! Run with `cargo run --release --example tpch_confidence` (release mode
//! recommended; the default instance is deliberately modest).

use std::time::Instant;

use uprob::datagen::{q1_answer, q2_answer, TpchConfig, TpchDatabase};
use uprob::prelude::*;

fn main() {
    // A scaled-down instance so the example finishes in seconds even in
    // debug builds; crank `row_scale` up (e.g. 1.0) to approach the paper's
    // absolute sizes.
    let config = TpchConfig::scale(0.01).with_row_scale(0.05).with_seed(2008);
    let started = Instant::now();
    let data = TpchDatabase::generate(config);
    println!(
        "generated probabilistic TPC-H: {} customers, {} orders, {} lineitems, {} Boolean variables ({:.1?})",
        data.db.relation("customer").expect("customer exists").len(),
        data.db.relation("orders").expect("orders exists").len(),
        data.db.relation("lineitem").expect("lineitem exists").len(),
        data.input_variables(),
        started.elapsed(),
    );

    for (name, answer) in [("Q1", q1_answer(&data)), ("Q2", q2_answer(&data))] {
        println!("\n== {name} ==");
        println!(
            "answer ws-set: {} descriptors over {} input variables",
            answer.ws_set_size(),
            answer.input_variables
        );

        let table = data.db.world_table();
        let report = |label: &str, value: f64, elapsed: std::time::Duration| {
            println!("  {label:<22} {value:.6}   ({elapsed:.1?})");
        };

        let t = Instant::now();
        let indve = confidence(&answer.ws_set, table, &DecompositionOptions::indve_minlog())
            .expect("INDVE succeeds");
        report("INDVE(minlog)", indve.probability, t.elapsed());

        let t = Instant::now();
        let minmax = confidence(&answer.ws_set, table, &DecompositionOptions::indve_minmax())
            .expect("INDVE succeeds");
        report("INDVE(minmax)", minmax.probability, t.elapsed());

        // Without independent partitioning, plain VE degrades badly on the
        // join query Q1 (the finding of Figure 11(b)); run it under a node
        // budget so the example always terminates quickly.
        let t = Instant::now();
        let ve_options = DecompositionOptions::ve_minlog().with_budget(200_000);
        match confidence(&answer.ws_set, table, &ve_options) {
            Ok(ve) => {
                report("VE(minlog)", ve.probability, t.elapsed());
                assert!((ve.probability - indve.probability).abs() < 1e-9);
            }
            Err(uprob::core::CoreError::BudgetExceeded { budget }) => {
                println!(
                    "  {:<22} aborted: exceeded the {budget}-node budget ({:.1?}) — \
                     independence partitioning is essential here",
                    "VE(minlog)",
                    t.elapsed()
                );
            }
            Err(e) => panic!("VE failed: {e}"),
        }

        // Descriptor elimination is exponential on Q1-like inputs; keep it
        // to the selection query where descriptors are independent.
        if name == "Q2" {
            let t = Instant::now();
            let we = confidence_by_elimination(&answer.ws_set, table).expect("WE succeeds");
            report("WE", we.probability, t.elapsed());
        }

        let t = Instant::now();
        let kl = karp_luby_epsilon_delta(
            &answer.ws_set,
            table,
            &ApproximationOptions::default()
                .with_epsilon(0.1)
                .with_delta(0.01),
        )
        .expect("Karp-Luby succeeds");
        report("KL(eps=.1)", kl.estimate, t.elapsed());
        println!("  KL iterations: {}", kl.iterations);

        let agreement = (indve.probability - minmax.probability).abs();
        println!("  exact methods agree within {agreement:.2e}");
        println!(
            "  decomposition: {} nodes, {} ⊗, {} ⊕, depth {}",
            indve.stats.total_nodes(),
            indve.stats.independent_nodes,
            indve.stats.choice_nodes,
            indve.stats.max_depth
        );
    }
}
