//! Data cleaning with conditioning: a larger OCR-extraction scenario.
//!
//! A batch of paper forms is digitised by OCR software; for every person the
//! reader proposes a handful of weighted alternatives for the social
//! security number. The raw extraction is stored as a probabilistic
//! database of priors. Cleaning then *conditions* the database on the
//! knowledge that SSNs are unique (a key constraint) and that SSNs lie in a
//! valid range, materialising a posterior database that all later queries
//! run against — without redoing the cleaning.
//!
//! The example also contrasts exact confidence computation with the
//! Karp–Luby approximation on the cleaned data, illustrating why the paper
//! insists on exact values when confidences feed comparison predicates.
//!
//! Run with `cargo run --example data_cleaning`.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use uprob::prelude::*;

/// Number of extracted persons.
const PERSONS: usize = 12;
/// Size of the SSN pool the OCR confuses readings within.
const SSN_POOL: i64 = 18;

fn main() {
    let mut rng = StdRng::seed_from_u64(2008);

    // ----------------------------------------------------------------- //
    // 1. Simulate the OCR extraction: per person, 2-3 weighted readings. //
    // ----------------------------------------------------------------- //
    let mut db = ProbDb::new();
    let schema = Schema::new(
        "person",
        &[("SSN", ColumnType::Int), ("NAME", ColumnType::Str)],
    );
    let mut relation = db.create_relation(schema).expect("fresh relation");
    for person in 0..PERSONS {
        let alternatives = rng.random_range(2..=3usize);
        // Draw distinct candidate SSNs and random weights.
        let mut candidates: Vec<i64> = Vec::new();
        while candidates.len() < alternatives {
            let candidate = rng.random_range(0..SSN_POOL);
            if !candidates.contains(&candidate) {
                candidates.push(candidate);
            }
        }
        let mut weights: Vec<f64> = (0..alternatives)
            .map(|_| rng.random_range(0.1..1.0))
            .collect();
        let total: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= total;
        }
        let distribution: Vec<(i64, f64)> = candidates
            .iter()
            .copied()
            .zip(weights.iter().copied())
            .collect();
        let var = db
            .world_table_mut()
            .add_variable(&format!("p{person}"), &distribution)
            .expect("valid distribution");
        for &(ssn, _) in &distribution {
            relation.push(
                Tuple::new(vec![
                    Value::Int(ssn),
                    Value::Str(format!("Person#{person:02}")),
                ]),
                WsDescriptor::from_pairs(db.world_table(), &[(var, ssn)])
                    .expect("valid descriptor"),
            );
        }
    }
    db.insert_relation(relation).expect("relation is valid");
    println!("== Raw OCR extraction ==");
    println!(
        "{} persons, {} candidate rows, 10^{:.1} possible worlds",
        PERSONS,
        db.relation("person").expect("person exists").len(),
        db.world_table().log2_world_count() * std::f64::consts::LN_2 / std::f64::consts::LN_10,
    );

    // ----------------------------------------------------------------- //
    // 2. Clean: assert that SSNs are unique and within the valid range.  //
    // ----------------------------------------------------------------- //
    let key = Constraint::key("person", &["SSN"]);
    let range = Constraint::row_filter(
        "person",
        Predicate::between("SSN", 0i64, SSN_POOL - 1).and(Predicate::cmp(
            Expr::col("SSN"),
            Comparison::Ge,
            Expr::val(0i64),
        )),
    );
    let options = ConditioningOptions::default();
    let step1 = assert_constraint(&db, &range, &options).expect("range constraint is satisfiable");
    let cleaned =
        assert_constraint(&step1.db, &key, &options).expect("key constraint is satisfiable");
    println!("\n== Cleaning ==");
    println!("P(valid range)          = {:.6}", step1.confidence);
    println!("P(key | valid range)    = {:.6}", cleaned.confidence);
    println!(
        "posterior world table: {} variables (was {})",
        cleaned.db.world_table().num_variables(),
        db.world_table().num_variables()
    );

    // ----------------------------------------------------------------- //
    // 3. Query the posterior: most likely SSN per person.                //
    // ----------------------------------------------------------------- //
    let person_relation = cleaned.db.relation("person").expect("person exists");
    println!("\n== Posterior: most likely SSN per person ==");
    for person in 0..PERSONS {
        let name = format!("Person#{person:02}");
        let this_person = algebra::select(
            person_relation,
            &Predicate::col_eq("NAME", name.as_str()),
            "one",
        )
        .expect("valid selection");
        let ssns = algebra::project(&this_person, &["SSN"], "ssns").expect("valid projection");
        let mut confidences = tuple_confidences(
            &ssns,
            cleaned.db.world_table(),
            &DecompositionOptions::default(),
        )
        .expect("confidence computation succeeds");
        confidences.sort_by(|a, b| b.1.total_cmp(&a.1));
        if let Some((tuple, p)) = confidences.first() {
            println!(
                "  {name}: SSN {:>3}  (conf {:.3})",
                tuple.get(0).expect("one column"),
                p
            );
        }
    }

    // ----------------------------------------------------------------- //
    // 4. Exact versus approximate confidence on the cleaned database.    //
    // ----------------------------------------------------------------- //
    let all = algebra::project(person_relation, &["SSN"], "all").expect("valid projection");
    let ws = all.answer_ws_set();
    let exact = confidence(
        &ws,
        cleaned.db.world_table(),
        &DecompositionOptions::indve_minlog(),
    )
    .expect("exact confidence succeeds");
    let approximate = karp_luby_epsilon_delta(
        &ws,
        cleaned.db.world_table(),
        &ApproximationOptions::default().with_epsilon(0.1),
    )
    .expect("approximation succeeds");
    println!("\n== P(some SSN is recorded) on the cleaned database ==");
    println!("  exact (INDVE, minlog): {:.6}", exact.probability);
    println!(
        "  Karp-Luby (eps = 0.1): {:.6}  ({} iterations)",
        approximate.estimate, approximate.iterations
    );
    println!(
        "  decomposition: {} nodes, max depth {}",
        exact.stats.total_nodes(),
        exact.stats.max_depth
    );
}
