//! Quickstart: the running example of the paper.
//!
//! Builds the SSN/NAME database of Figures 1/2, queries tuple confidences,
//! asserts the functional dependency `SSN -> NAME` (social security numbers
//! are unique) and queries the *conditional* probabilities on the posterior
//! database — reproducing the numbers of the paper's introduction.
//!
//! Run with `cargo run --example quickstart`.

use uprob::prelude::*;

fn main() {
    // ----------------------------------------------------------------- //
    // 1. Build the prior database.                                       //
    // ----------------------------------------------------------------- //
    let mut db = ProbDb::new();
    let j = db
        .world_table_mut()
        .add_variable("j", &[(1, 0.2), (7, 0.8)])
        .expect("valid distribution");
    let b = db
        .world_table_mut()
        .add_variable("b", &[(4, 0.3), (7, 0.7)])
        .expect("valid distribution");
    let f = db
        .world_table_mut()
        .add_variable("f", &[(1, 0.5), (4, 0.5)])
        .expect("valid distribution");

    let schema = Schema::new("R", &[("SSN", ColumnType::Int), ("NAME", ColumnType::Str)]);
    let mut r = db.create_relation(schema).expect("fresh relation");
    {
        let w = db.world_table();
        let mut push = |ssn: i64, name: &str, var, value| {
            r.push(
                Tuple::new(vec![Value::Int(ssn), Value::str(name)]),
                WsDescriptor::from_pairs(w, &[(var, value)]).expect("valid descriptor"),
            );
        };
        push(1, "John", j, 1);
        push(7, "John", j, 7);
        push(4, "Bill", b, 4);
        push(7, "Bill", b, 7);
        push(1, "Fred", f, 1);
        push(4, "Fred", f, 4);
    }
    db.insert_relation(r).expect("relation is valid");

    println!("== Prior database ==");
    println!("{db}");
    println!(
        "possible worlds: {}",
        db.world_table().world_count().expect("small database")
    );

    // ----------------------------------------------------------------- //
    // 2. select SSN, conf() from R where NAME = 'Bill' group by SSN      //
    // ----------------------------------------------------------------- //
    let bills = algebra::select(
        db.relation("R").expect("R exists"),
        &Predicate::col_eq("NAME", "Bill"),
        "Bills",
    )
    .expect("valid selection");
    let ssns = algebra::project(&bills, &["SSN"], "Q").expect("valid projection");
    let prior_conf = tuple_confidences(&ssns, db.world_table(), &DecompositionOptions::default())
        .expect("confidence computation succeeds");
    println!("\n== Prior confidences: Bill's SSN ==");
    for (tuple, p) in &prior_conf {
        println!(
            "  SSN {}   conf {:.4}",
            tuple.get(0).expect("one column"),
            p
        );
    }

    // ----------------------------------------------------------------- //
    // 3. assert[SSN -> NAME]: SSNs are unique.                           //
    // ----------------------------------------------------------------- //
    let fd = Constraint::functional_dependency("R", &["SSN"], &["NAME"]);
    let posterior = assert_constraint(&db, &fd, &ConditioningOptions::default())
        .expect("the FD is satisfiable");
    println!("\n== assert[SSN -> NAME] ==");
    println!(
        "confidence of the constraint in the prior: {:.4}",
        posterior.confidence
    );
    println!("fresh variables introduced: {}", posterior.new_variables);
    println!("\n== Posterior database ==");
    println!("{}", posterior.db);

    // ----------------------------------------------------------------- //
    // 4. The same query on the posterior gives conditional probabilities //
    // ----------------------------------------------------------------- //
    let bills = algebra::select(
        posterior.db.relation("R").expect("R exists"),
        &Predicate::col_eq("NAME", "Bill"),
        "Bills",
    )
    .expect("valid selection");
    let ssns = algebra::project(&bills, &["SSN"], "Q").expect("valid projection");
    let posterior_conf = tuple_confidences(
        &ssns,
        posterior.db.world_table(),
        &DecompositionOptions::default(),
    )
    .expect("confidence computation succeeds");
    println!("== Posterior confidences: Bill's SSN given the FD ==");
    for (tuple, p) in &posterior_conf {
        println!(
            "  SSN {}   conf {:.4}",
            tuple.get(0).expect("one column"),
            p
        );
    }

    // ----------------------------------------------------------------- //
    // 5. select SSN from R where conf(SSN) = 1: the certain SSNs.        //
    // ----------------------------------------------------------------- //
    let all_ssns = algebra::project(posterior.db.relation("R").expect("R exists"), &["SSN"], "S")
        .expect("valid projection");
    let certain = certain_tuples(
        &all_ssns,
        posterior.db.world_table(),
        &DecompositionOptions::default(),
    )
    .expect("confidence computation succeeds");
    println!("\n== Certain SSNs after conditioning (conf = 1) ==");
    for tuple in &certain {
        println!("  SSN {}", tuple.get(0).expect("one column"));
    }
    assert_eq!(
        certain.len(),
        3,
        "the introduction's example promises three"
    );
}
